//! Fault-propagation reports rebuilt from campaign telemetry traces.
//!
//! The `tfsim-run report` subcommand feeds a parsed JSONL event stream
//! (`tfsim_obs::Event`) into [`TelemetryReport::from_events`] and renders
//! the result: outcome census, per-category and per-unit vulnerability
//! with Wilson confidence intervals, injected-unit → first-diverging-unit
//! propagation pairs, latency-to-divergence histograms, and per-phase
//! wall-clock totals.
//!
//! The census block is also used by the *untraced* campaign path: both
//! renderers build their rows through [`census_rows`], which is what
//! guarantees a traced campaign's census is byte-identical to the
//! untraced one for the same seed and configuration.

use std::collections::BTreeMap;

use tfsim_obs::json::{obj, Json};
use tfsim_obs::{Event, Histogram, PruneDispositions};

use crate::{pct, wilson_ci, Confidence, Table};

/// Canonical outcome-census rows: `match`, `gray`, then one `fail:<mode>`
/// row per *observed* failure mode in alphabetical mode order (which is
/// also the paper's Table 2 order). Zero-count modes are omitted.
pub fn census_rows<'a>(
    matched: u64,
    gray: u64,
    failures: impl IntoIterator<Item = (&'a str, u64)>,
) -> Vec<(String, u64)> {
    let mut rows = vec![("match".to_string(), matched), ("gray".to_string(), gray)];
    let mut modes: Vec<(&str, u64)> = failures.into_iter().collect();
    modes.sort_by(|a, b| a.0.cmp(b.0));
    for (mode, n) in modes {
        if n > 0 {
            rows.push((format!("fail:{mode}"), n));
        }
    }
    rows
}

/// Renders census rows (from [`census_rows`]) as the outcome-census table.
pub fn render_census(rows: &[(String, u64)]) -> String {
    let total: u64 = rows.iter().map(|(_, n)| *n).sum();
    let mut t = Table::new(&["outcome", "trials", "%"]);
    for (label, n) in rows {
        t.row_owned(vec![label.clone(), n.to_string(), pct(*n, total)]);
    }
    format!("outcome census ({total} trials)\n{}", t.render())
}

/// Trials and failures for one slice (a category or a unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Slice {
    trials: u64,
    failed: u64,
}

/// Cycle-offset buckets in the residency heatmap. Few enough to render in
/// an 80-column terminal, enough to show front-loaded vs. lingering faults.
const RESIDENCY_BUCKETS: usize = 16;

/// Intensity ramp for heatmap cells, blank through densest.
const HEATMAP_RAMP: &[u8] = b" .:-=+*#%@";

/// Per-unit divergence-episode statistics from deep-trace timelines.
///
/// One *episode* is one deep-traced trial whose timeline contained the
/// unit at least once; `ttd` holds, per episode, the cycles from the
/// unit's first appearance to the trial's detection cycle.
#[derive(Debug, Clone, Default)]
struct UnitPropagation {
    episodes: u64,
    failed: u64,
    ttd: Vec<u64>,
}

/// Aggregated view of a campaign trace, ready for rendering.
///
/// Build with [`TelemetryReport::from_events`] from a stream already
/// validated by `tfsim_obs::parse_trace` (header first, known schema).
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    seed: u64,
    benchmarks: Vec<String>,
    start_points: u64,
    trials_per_start_point: u64,
    inject_window: u64,
    monitor_cycles: u64,
    trials: u64,
    matched: u64,
    gray: u64,
    quarantined: u64,
    modes: BTreeMap<String, u64>,
    by_category: BTreeMap<String, Slice>,
    by_unit: BTreeMap<String, Slice>,
    propagation: BTreeMap<(String, String), u64>,
    /// Deep-trace aggregation: distinct propagation chains (units in
    /// first-appearance order) and how many timelines followed each.
    chains: BTreeMap<Vec<String>, u64>,
    /// Deep-trace aggregation: per-unit diverged-cycle weight in each of
    /// [`RESIDENCY_BUCKETS`] equal cycle-offset buckets after injection.
    residency: BTreeMap<String, [u64; RESIDENCY_BUCKETS]>,
    /// Deep-trace aggregation: per-unit divergence episodes and TTDs.
    unit_propagation: BTreeMap<String, UnitPropagation>,
    /// Trials that carried a propagation timeline.
    deep_trials: u64,
    /// Span profile: `;`-separated path → (total wall ns, calls).
    spans: BTreeMap<String, (u64, u64)>,
    fail_latency: Histogram,
    match_latency: Histogram,
    divergence_latency: Histogram,
    phase_ns: BTreeMap<String, u64>,
    eligible_bits: Option<u64>,
    wall_ns: Option<u64>,
    prune: Option<PruneDispositions>,
}

impl TelemetryReport {
    /// Aggregates an event stream into a report.
    ///
    /// Returns an error if the stream lacks a `CampaignStart` header or if
    /// the `CampaignEnd` footer's totals disagree with the trial events —
    /// a truncated or corrupted trace fails loudly instead of producing a
    /// quietly wrong report.
    pub fn from_events(events: &[Event]) -> Result<TelemetryReport, String> {
        let header = match events.first() {
            Some(Event::CampaignStart {
                seed,
                benchmarks,
                start_points,
                trials_per_start_point,
                inject_window,
                monitor_cycles,
                ..
            }) => (
                *seed,
                benchmarks.clone(),
                *start_points,
                *trials_per_start_point,
                *inject_window,
                *monitor_cycles,
            ),
            _ => return Err("trace does not begin with a campaign_start event".to_string()),
        };
        let mut report = TelemetryReport {
            seed: header.0,
            benchmarks: header.1,
            start_points: header.2,
            trials_per_start_point: header.3,
            inject_window: header.4,
            monitor_cycles: header.5,
            trials: 0,
            matched: 0,
            gray: 0,
            quarantined: 0,
            modes: BTreeMap::new(),
            by_category: BTreeMap::new(),
            by_unit: BTreeMap::new(),
            propagation: BTreeMap::new(),
            chains: BTreeMap::new(),
            residency: BTreeMap::new(),
            unit_propagation: BTreeMap::new(),
            deep_trials: 0,
            spans: BTreeMap::new(),
            fail_latency: Histogram::new(),
            match_latency: Histogram::new(),
            divergence_latency: Histogram::new(),
            phase_ns: BTreeMap::new(),
            eligible_bits: None,
            wall_ns: None,
            prune: None,
        };
        // Propagation events are only meaningful relative to the trial
        // they follow (its injection cycle anchors the timeline, its
        // outcome labels the episode), so the last trial's context —
        // (identity key, inject cycle, detect cycle, failed) — rides
        // along between events.
        type TrialContext = ((u64, u64, u64), u64, u64, bool);
        let mut last_trial: Option<TrialContext> = None;
        for ev in &events[1..] {
            match ev {
                Event::Trial {
                    benchmark,
                    start_point,
                    trial,
                    inject_cycle,
                    category,
                    unit,
                    outcome,
                    mode,
                    detect_cycle,
                    divergence_cycle,
                    diverged_unit,
                    ..
                } => {
                    report.trials += 1;
                    let failed = outcome == "fail";
                    match outcome.as_str() {
                        "match" => report.matched += 1,
                        "gray" => report.gray += 1,
                        "fail" => {
                            let label = mode.clone().unwrap_or_else(|| "?".to_string());
                            *report.modes.entry(label).or_insert(0) += 1;
                        }
                        other => return Err(format!("unknown trial outcome {other:?}")),
                    }
                    let cat = report.by_category.entry(category.clone()).or_default();
                    cat.trials += 1;
                    cat.failed += failed as u64;
                    let unit_label = unit.clone().unwrap_or_else(|| "(shared)".to_string());
                    let u = report.by_unit.entry(unit_label.clone()).or_default();
                    u.trials += 1;
                    u.failed += failed as u64;
                    let latency = detect_cycle.saturating_sub(*inject_cycle);
                    match outcome.as_str() {
                        "fail" => report.fail_latency.record(latency),
                        "match" => report.match_latency.record(latency),
                        _ => {}
                    }
                    if let Some(div) = divergence_cycle {
                        report.divergence_latency.record(div.saturating_sub(*inject_cycle));
                        let to = diverged_unit.clone().unwrap_or_else(|| "(global)".to_string());
                        *report.propagation.entry((unit_label, to)).or_insert(0) += 1;
                    }
                    last_trial = Some((
                        (*benchmark, *start_point, *trial),
                        *inject_cycle,
                        *detect_cycle,
                        failed,
                    ));
                }
                Event::Propagation { benchmark, start_point, trial, samples } => {
                    let Some((key, inject, detect, failed)) = last_trial else {
                        return Err("propagation event before any trial event".to_string());
                    };
                    if key != (*benchmark, *start_point, *trial) {
                        return Err(format!(
                            "propagation event for trial ({benchmark}, {start_point}, {trial}) \
                             does not follow its trial event"
                        ));
                    }
                    report.absorb_timeline(samples, inject, detect, failed);
                }
                Event::Span { path, wall_ns, calls } => {
                    let s = report.spans.entry(path.clone()).or_insert((0, 0));
                    s.0 += wall_ns;
                    s.1 += calls;
                }
                Event::Phase { phase, wall_ns, .. } => {
                    *report.phase_ns.entry(phase.clone()).or_insert(0) += wall_ns;
                }
                Event::Quarantine { .. } => {
                    report.quarantined += 1;
                }
                Event::CampaignEnd {
                    trials,
                    matched,
                    gray,
                    failed,
                    eligible_bits,
                    wall_ns,
                    quarantined,
                    prune,
                } => {
                    let failed_seen: u64 = report.modes.values().sum();
                    if (*trials, *matched, *gray, *failed)
                        != (report.trials, report.matched, report.gray, failed_seen)
                    {
                        return Err(format!(
                            "campaign_end totals ({trials} trials, {matched}/{gray}/{failed}) \
                             disagree with the {} trial events seen ({}/{}/{}) — truncated trace?",
                            report.trials, report.matched, report.gray, failed_seen
                        ));
                    }
                    if *quarantined != report.quarantined {
                        return Err(format!(
                            "campaign_end claims {quarantined} quarantined trials but the \
                             trace carries {} quarantine events — truncated trace?",
                            report.quarantined
                        ));
                    }
                    report.eligible_bits = Some(*eligible_bits);
                    report.wall_ns = Some(*wall_ns);
                    report.prune = *prune;
                }
                Event::CampaignStart { .. } => {
                    return Err("duplicate campaign_start event".to_string());
                }
            }
        }
        Ok(report)
    }

    /// Folds one trial's divergence timeline into the chain, residency,
    /// and time-to-detection aggregates.
    ///
    /// Each change-only sample `(cycle, units)` holds until the next
    /// sample's cycle; the last sample holds until the trial's detection
    /// cycle. Residency weight is therefore *cycles spent diverged*, not
    /// sample counts, so a fault that settles into one unit for 1000
    /// cycles outweighs one that flickers through it for 2.
    fn absorb_timeline(
        &mut self,
        samples: &[(u64, Vec<String>)],
        inject: u64,
        detect: u64,
        failed: bool,
    ) {
        if samples.is_empty() {
            return;
        }
        self.deep_trials += 1;

        // Chain: units in order of first appearance across the timeline.
        let mut chain: Vec<String> = Vec::new();
        let mut first_seen: BTreeMap<&str, u64> = BTreeMap::new();
        for (cycle, units) in samples {
            for u in units {
                if !first_seen.contains_key(u.as_str()) {
                    first_seen.insert(u, *cycle);
                    chain.push(u.clone());
                }
            }
        }
        if !chain.is_empty() {
            *self.chains.entry(chain).or_insert(0) += 1;
        }
        for (u, first) in first_seen {
            let up = self.unit_propagation.entry(u.to_string()).or_default();
            up.episodes += 1;
            up.failed += failed as u64;
            up.ttd.push(detect.saturating_sub(first));
        }

        // Residency: distribute each sample's hold interval (in cycle
        // offsets after injection) over the fixed bucket grid.
        let bucket_cycles = self.bucket_cycles();
        let horizon = bucket_cycles * RESIDENCY_BUCKETS as u64;
        for (i, (cycle, units)) in samples.iter().enumerate() {
            if units.is_empty() {
                continue;
            }
            let start = cycle.saturating_sub(inject).min(horizon);
            let end = samples
                .get(i + 1)
                .map_or(detect.max(*cycle), |(next, _)| *next)
                .saturating_sub(inject)
                .clamp(start + 1, horizon.max(start + 1));
            for b in 0..RESIDENCY_BUCKETS {
                let lo = (b as u64 * bucket_cycles).max(start);
                let hi = ((b as u64 + 1) * bucket_cycles).min(end);
                if lo < hi {
                    for u in units {
                        self.residency.entry(u.clone()).or_insert([0; RESIDENCY_BUCKETS])[b] +=
                            hi - lo;
                    }
                }
            }
        }
    }

    /// Width of one residency-heatmap bucket in cycles.
    fn bucket_cycles(&self) -> u64 {
        (self.monitor_cycles.max(1)).div_ceil(RESIDENCY_BUCKETS as u64)
    }

    /// Total trials aggregated.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Trials that carried a deep-trace propagation timeline.
    pub fn deep_trials(&self) -> u64 {
        self.deep_trials
    }

    /// The outcome census rows (shared shape with the untraced path).
    pub fn census(&self) -> Vec<(String, u64)> {
        census_rows(self.matched, self.gray, self.modes.iter().map(|(m, n)| (m.as_str(), *n)))
    }

    /// Renders the full report; `top_n` bounds the unit and propagation
    /// tables.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        out.push_str("campaign telemetry report\n");
        out.push_str(&format!(
            "  seed {} · {} benchmarks · {} start points × {} trials · inject window {} · monitor {} cycles\n",
            self.seed,
            self.benchmarks.len(),
            self.start_points,
            self.trials_per_start_point,
            self.inject_window,
            self.monitor_cycles,
        ));
        if let Some(bits) = self.eligible_bits {
            out.push_str(&format!("  eligible bits: {bits}\n"));
        }
        if let Some(ns) = self.wall_ns {
            if ns > 0 {
                out.push_str(&format!("  campaign wall clock: {:.2}s\n", ns as f64 / 1e9));
            }
        }
        out.push('\n');
        out.push_str(&render_census(&self.census()));

        out.push_str("\nvulnerability by category (95% Wilson CI)\n");
        out.push_str(&render_slices(&self.by_category, usize::MAX));

        out.push_str(&format!("\ntop {} vulnerable units (95% Wilson CI)\n", top_n));
        out.push_str(&render_slices(&self.by_unit, top_n));

        if !self.propagation.is_empty() {
            out.push_str("\nfault propagation (injected unit → first diverging unit)\n");
            let mut pairs: Vec<(&(String, String), &u64)> = self.propagation.iter().collect();
            pairs.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            let dropped = pairs.len().saturating_sub(top_n);
            let mut t = Table::new(&["injected", "diverged", "trials"]);
            for ((from, to), n) in pairs.into_iter().take(top_n) {
                t.row_owned(vec![from.clone(), to.clone(), n.to_string()]);
            }
            out.push_str(&t.render());
            out.push_str(&truncation_note(dropped, "pairs"));
        }

        if self.deep_trials > 0 {
            out.push_str(&format!(
                "\n{} deep-traced timelines aggregated — render with --propagation for \
                 chains, residency heatmap, and per-unit detection latencies\n",
                self.deep_trials
            ));
        }

        out.push('\n');
        out.push_str(&self.fail_latency.render("cycles to failure detection"));
        out.push('\n');
        out.push_str(&self.match_latency.render("cycles to reconvergence (µarch match)"));
        out.push('\n');
        out.push_str(&self.divergence_latency.render("cycles to first µarch divergence"));

        if !self.phase_ns.is_empty() {
            out.push_str("\nphase wall-clock totals\n");
            let mut t = Table::new(&["phase", "total ms"]);
            for phase in ["warmup", "prepare", "advance", "monitor"] {
                if let Some(ns) = self.phase_ns.get(phase) {
                    t.row_owned(vec![phase.to_string(), format!("{:.1}", *ns as f64 / 1e6)]);
                }
            }
            for (phase, ns) in &self.phase_ns {
                if !matches!(phase.as_str(), "warmup" | "prepare" | "advance" | "monitor") {
                    t.row_owned(vec![phase.clone(), format!("{:.1}", *ns as f64 / 1e6)]);
                }
            }
            out.push_str(&t.render());
        }
        if !self.spans.is_empty() {
            out.push_str("\nspan profile (wall time per phase, summed across workers)\n");
            let mut t = Table::new(&["span", "calls", "total ms"]);
            for (path, (ns, calls)) in &self.spans {
                // Indent by depth so the `;`-separated paths read as a tree.
                let depth = path.matches(';').count();
                let leaf = path.rsplit(';').next().unwrap_or(path);
                t.row_owned(vec![
                    format!("{}{leaf}", "  ".repeat(depth)),
                    calls.to_string(),
                    format!("{:.1}", *ns as f64 / 1e6),
                ]);
            }
            out.push_str(&t.render());
        }
        if let Some(p) = &self.prune {
            // Pruner accounting: how the planned census volume was
            // discharged. Only simulated sites ran the pipeline; the rest
            // were proved masked from the golden access footprint or
            // multiplied out from an equivalence-class representative.
            let total = p.total();
            out.push_str(&format!(
                "\npruner dispositions: {} proved dead ({}), {} class-collapsed ({}), \
                 {} simulated ({}) of {} sites\n",
                p.proved_dead,
                pct(p.proved_dead, total),
                p.class_collapsed,
                pct(p.class_collapsed, total),
                p.simulated,
                pct(p.simulated, total),
                total,
            ));
        }
        if self.quarantined > 0 {
            // Harness health, not an outcome: quarantined trials are
            // panics the containment backstop caught, kept out of the
            // census above (see DESIGN.md on corrupted-state hardening).
            let planned = self.trials + self.quarantined;
            out.push_str(&format!(
                "\nquarantined trials: {} of {} planned ({}) — harness escapes, not outcomes\n",
                self.quarantined,
                planned,
                pct(self.quarantined, planned),
            ));
        }
        out
    }

    /// Renders the deep-trace propagation report: chains, the per-unit
    /// residency heatmap, and per-unit detection-latency distributions.
    ///
    /// Empty (with a pointer at `--deep-trace`) when the stream carried no
    /// propagation timelines.
    pub fn render_propagation(&self, top_n: usize) -> String {
        if self.deep_trials == 0 {
            return "no propagation timelines in this trace — record one with \
                    `tfsim-run campaign --trace … --deep-trace`\n"
                .to_string();
        }
        let mut out = String::new();
        out.push_str(&format!(
            "fault propagation report · {} deep-traced timelines of {} trials\n",
            self.deep_trials, self.trials,
        ));

        out.push_str("\npropagation chains (units in first-divergence order)\n");
        let mut chains: Vec<(&Vec<String>, &u64)> = self.chains.iter().collect();
        chains.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
        let dropped = chains.len().saturating_sub(top_n);
        let mut t = Table::new(&["chain", "trials", "%"]);
        for (chain, n) in chains.into_iter().take(top_n) {
            t.row_owned(vec![chain.join(" → "), n.to_string(), pct(*n, self.deep_trials)]);
        }
        out.push_str(&t.render());
        out.push_str(&truncation_note(dropped, "chains"));

        out.push_str(&self.render_residency_heatmap());

        out.push_str("\nper-unit divergence episodes (95% Wilson CI on failure rate)\n");
        let mut t = Table::new(&[
            "unit",
            "timelines",
            "failed",
            "fail %",
            "ci ±",
            "ttd p50",
            "ttd p90",
            "ttd max",
        ]);
        let mut units: Vec<(&String, &UnitPropagation)> = self.unit_propagation.iter().collect();
        units.sort_by(|a, b| b.1.episodes.cmp(&a.1.episodes).then_with(|| a.0.cmp(b.0)));
        for (unit, up) in units {
            let ci = wilson_ci(up.failed, up.episodes, Confidence::P95);
            let mut ttd = up.ttd.clone();
            ttd.sort_unstable();
            let q = |f: f64| ttd[((ttd.len() - 1) as f64 * f) as usize];
            t.row_owned(vec![
                unit.clone(),
                up.episodes.to_string(),
                up.failed.to_string(),
                pct(up.failed, up.episodes),
                format!("{:.1}", 100.0 * ci.half_width),
                q(0.5).to_string(),
                q(0.9).to_string(),
                ttd[ttd.len() - 1].to_string(),
            ]);
        }
        out.push_str(&t.render());
        out
    }

    /// ASCII heatmap: one row per unit, one column per cycle-offset
    /// bucket, cell intensity ∝ diverged-cycle weight (row-normalized so
    /// a rarely-hit unit's shape is still visible).
    fn render_residency_heatmap(&self) -> String {
        let bucket = self.bucket_cycles();
        let mut out = format!(
            "\nresidency heatmap (diverged cycles per unit × {RESIDENCY_BUCKETS} buckets of \
             {bucket} cycles after injection)\n"
        );
        let width = self.residency.keys().map(|u| u.len()).max().unwrap_or(4).max(4);
        let mut rows: Vec<(&String, &[u64; RESIDENCY_BUCKETS])> = self.residency.iter().collect();
        rows.sort_by(|a, b| {
            let (sa, sb) = (a.1.iter().sum::<u64>(), b.1.iter().sum::<u64>());
            sb.cmp(&sa).then_with(|| a.0.cmp(b.0))
        });
        for (unit, buckets) in rows {
            let max = *buckets.iter().max().expect("fixed-size row");
            let mut cells = String::new();
            for &v in buckets {
                let idx = if v == 0 || max == 0 {
                    0
                } else {
                    // Nonzero weight always gets at least the faintest ink.
                    (v * (HEATMAP_RAMP.len() as u64 - 2)).div_ceil(max) as usize
                };
                cells.push(HEATMAP_RAMP[idx] as char);
            }
            out.push_str(&format!(
                "  {unit:<width$} |{cells}|  {} cycles\n",
                buckets.iter().sum::<u64>()
            ));
        }
        out.push_str(&format!(
            "  {:<width$} |{}|  ramp: '{}' = 0 → '{}' = row max\n",
            "",
            " ".repeat(RESIDENCY_BUCKETS),
            HEATMAP_RAMP[0] as char,
            *HEATMAP_RAMP.last().expect("non-empty ramp") as char,
        ));
        out
    }

    /// The propagation aggregates as one machine-readable JSON object
    /// (chains, residency matrix, per-unit episode stats) for downstream
    /// tooling; the schema mirrors [`TelemetryReport::render_propagation`].
    pub fn propagation_json(&self) -> Json {
        let chains = Json::Arr(
            self.chains
                .iter()
                .map(|(chain, n)| {
                    Json::Obj(BTreeMap::from([
                        (
                            "chain".to_string(),
                            Json::Arr(chain.iter().map(|u| Json::Str(u.clone())).collect()),
                        ),
                        ("trials".to_string(), Json::Int(*n as i128)),
                    ]))
                })
                .collect(),
        );
        let residency = Json::Obj(
            self.residency
                .iter()
                .map(|(unit, buckets)| {
                    (
                        unit.clone(),
                        Json::Arr(buckets.iter().map(|&v| Json::Int(v as i128)).collect()),
                    )
                })
                .collect(),
        );
        let units = Json::Obj(
            self.unit_propagation
                .iter()
                .map(|(unit, up)| {
                    (
                        unit.clone(),
                        Json::Obj(BTreeMap::from([
                            ("timelines".to_string(), Json::Int(up.episodes as i128)),
                            ("failed".to_string(), Json::Int(up.failed as i128)),
                            (
                                "ttd".to_string(),
                                Json::Arr(up.ttd.iter().map(|&v| Json::Int(v as i128)).collect()),
                            ),
                        ])),
                    )
                })
                .collect(),
        );
        obj([
            ("deep_trials", Json::Int(self.deep_trials as i128)),
            ("bucket_cycles", Json::Int(self.bucket_cycles() as i128)),
            ("residency_buckets", Json::Int(RESIDENCY_BUCKETS as i128)),
            ("chains", chains),
            ("residency", residency),
            ("units", units),
        ])
    }
}

/// Renders a vulnerability table for named slices, most vulnerable first.
fn render_slices(slices: &BTreeMap<String, Slice>, top_n: usize) -> String {
    let mut rows: Vec<(&String, &Slice)> = slices.iter().collect();
    rows.sort_by(|a, b| {
        let ra = rate(a.1);
        let rb = rate(b.1);
        rb.total_cmp(&ra).then_with(|| a.0.cmp(b.0))
    });
    let dropped = rows.len().saturating_sub(top_n);
    let mut t = Table::new(&["slice", "trials", "failed", "fail %", "ci ±"]);
    for (name, s) in rows.into_iter().take(top_n) {
        let ci = wilson_ci(s.failed, s.trials, Confidence::P95);
        t.row_owned(vec![
            name.clone(),
            s.trials.to_string(),
            s.failed.to_string(),
            pct(s.failed, s.trials),
            format!("{:.1}", 100.0 * ci.half_width),
        ]);
    }
    format!("{}{}", t.render(), truncation_note(dropped, "rows"))
}

/// A one-line `… N more <what> not shown` marker, or nothing when the
/// table was complete — truncated tables must say so instead of passing
/// as exhaustive.
fn truncation_note(dropped: usize, what: &str) -> String {
    if dropped == 0 {
        String::new()
    } else {
        format!("  … {dropped} more {what} not shown\n")
    }
}

fn rate(s: &Slice) -> f64 {
    if s.trials == 0 {
        0.0
    } else {
        s.failed as f64 / s.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_obs::SCHEMA_VERSION;

    fn trial(
        category: &str,
        unit: Option<&str>,
        outcome: &str,
        mode: Option<&str>,
        inject: u64,
        detect: u64,
        div: Option<(u64, &str)>,
    ) -> Event {
        Event::Trial {
            benchmark: 0,
            start_point: 0,
            trial: 0,
            target: 0,
            inject_cycle: inject,
            category: category.to_string(),
            kind: "latch".to_string(),
            unit: unit.map(str::to_string),
            outcome: outcome.to_string(),
            mode: mode.map(str::to_string),
            detect_cycle: detect,
            divergence_cycle: div.map(|(c, _)| c),
            diverged_unit: div.map(|(_, u)| u.to_string()),
            valid_instructions: 0,
        }
    }

    fn sample_stream() -> Vec<Event> {
        vec![
            Event::CampaignStart {
                schema: SCHEMA_VERSION,
                seed: 11,
                benchmarks: vec!["gzip-like".to_string()],
                start_points: 1,
                trials_per_start_point: 4,
                inject_window: 100,
                monitor_cycles: 2000,
            },
            Event::Phase {
                benchmark: 0,
                start_point: 0,
                phase: "warmup".to_string(),
                wall_ns: 2_000_000,
            },
            trial("rob", Some("rob"), "fail", Some("regfile"), 10, 90, Some((12, "rename"))),
            trial("rob", Some("rob"), "match", None, 5, 40, Some((7, "rob"))),
            trial("bpred", Some("bpred"), "gray", None, 0, 2000, None),
            trial("rob", Some("rob"), "fail", Some("ctrl"), 3, 50, Some((4, "rename"))),
            Event::CampaignEnd {
                trials: 4,
                matched: 1,
                gray: 1,
                failed: 2,
                quarantined: 0,
                eligible_bits: 512,
                wall_ns: 9_000_000,
                prune: None,
            },
        ]
    }

    #[test]
    fn census_rows_omit_zero_modes_in_alphabetical_order() {
        let rows = census_rows(10, 3, [("regfile", 2), ("ctrl", 1), ("mem", 0)]);
        let labels: Vec<&str> = rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["match", "gray", "fail:ctrl", "fail:regfile"]);
        assert_eq!(rows[2].1, 1);
        assert_eq!(rows[3].1, 2);
    }

    #[test]
    fn report_aggregates_the_stream() {
        let report = TelemetryReport::from_events(&sample_stream()).unwrap();
        assert_eq!(report.trials(), 4);
        assert_eq!(
            report.census(),
            vec![
                ("match".to_string(), 1),
                ("gray".to_string(), 1),
                ("fail:ctrl".to_string(), 1),
                ("fail:regfile".to_string(), 1),
            ]
        );
        let rendered = report.render(10);
        assert!(rendered.contains("outcome census (4 trials)"));
        assert!(rendered.contains("fail:regfile"));
        assert!(rendered.contains("rename"), "propagation target missing:\n{rendered}");
        assert!(rendered.contains("cycles to failure detection"));
        assert!(rendered.contains("warmup"));
        assert!(rendered.contains("eligible bits: 512"));
    }

    #[test]
    fn quarantine_events_reach_the_footer_not_the_census() {
        let mut events = sample_stream();
        let end = events.pop().unwrap();
        events.push(Event::Quarantine {
            benchmark: 0,
            start_point: 0,
            trial: 3,
            target: 77,
            inject_cycle: 9,
            panic_msg: "forced mid-trial panic".to_string(),
        });
        let Event::CampaignEnd { trials, matched, gray, failed, eligible_bits, wall_ns, .. } = end
        else {
            unreachable!()
        };
        events.push(Event::CampaignEnd {
            trials,
            matched,
            gray,
            failed,
            quarantined: 1,
            eligible_bits,
            wall_ns,
            prune: None,
        });
        let report = TelemetryReport::from_events(&events).unwrap();
        // The census counts only classified trials.
        assert_eq!(report.trials(), 4);
        let rendered = report.render(10);
        assert!(rendered.contains("outcome census (4 trials)"));
        assert!(
            rendered.contains("quarantined trials: 1 of 5 planned"),
            "missing quarantine footer:\n{rendered}"
        );

        // And the footer cross-check catches a count mismatch.
        if let Some(Event::CampaignEnd { quarantined, .. }) = events.last_mut() {
            *quarantined = 2;
        }
        let err = TelemetryReport::from_events(&events).unwrap_err();
        assert!(err.contains("quarantine"), "got: {err}");
    }

    #[test]
    fn pruned_footer_renders_disposition_line() {
        let mut events = sample_stream();
        if let Some(Event::CampaignEnd { prune, .. }) = events.last_mut() {
            *prune =
                Some(PruneDispositions { proved_dead: 90, class_collapsed: 6, simulated: 4 });
        }
        let report = TelemetryReport::from_events(&events).unwrap();
        let rendered = report.render(10);
        assert!(
            rendered.contains("pruner dispositions: 90 proved dead"),
            "missing pruner footer:\n{rendered}"
        );
        // Unpruned streams keep the pre-pruner layout.
        let plain = TelemetryReport::from_events(&sample_stream()).unwrap().render(10);
        assert!(!plain.contains("pruner dispositions"), "{plain}");
    }

    #[test]
    fn footer_mismatch_is_rejected() {
        let mut events = sample_stream();
        if let Some(Event::CampaignEnd { matched, .. }) = events.last_mut() {
            *matched = 99;
        }
        let err = TelemetryReport::from_events(&events).unwrap_err();
        assert!(err.contains("disagree"), "got: {err}");
    }

    #[test]
    fn headerless_stream_is_rejected() {
        let events = vec![trial("rob", None, "gray", None, 0, 1, None)];
        assert!(TelemetryReport::from_events(&events).is_err());
    }
}
