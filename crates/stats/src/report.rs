//! Fault-propagation reports rebuilt from campaign telemetry traces.
//!
//! The `tfsim-run report` subcommand feeds a parsed JSONL event stream
//! (`tfsim_obs::Event`) into [`TelemetryReport::from_events`] and renders
//! the result: outcome census, per-category and per-unit vulnerability
//! with Wilson confidence intervals, injected-unit → first-diverging-unit
//! propagation pairs, latency-to-divergence histograms, and per-phase
//! wall-clock totals.
//!
//! The census block is also used by the *untraced* campaign path: both
//! renderers build their rows through [`census_rows`], which is what
//! guarantees a traced campaign's census is byte-identical to the
//! untraced one for the same seed and configuration.

use std::collections::BTreeMap;

use tfsim_obs::{Event, Histogram, PruneDispositions};

use crate::{pct, wilson_ci, Confidence, Table};

/// Canonical outcome-census rows: `match`, `gray`, then one `fail:<mode>`
/// row per *observed* failure mode in alphabetical mode order (which is
/// also the paper's Table 2 order). Zero-count modes are omitted.
pub fn census_rows<'a>(
    matched: u64,
    gray: u64,
    failures: impl IntoIterator<Item = (&'a str, u64)>,
) -> Vec<(String, u64)> {
    let mut rows = vec![("match".to_string(), matched), ("gray".to_string(), gray)];
    let mut modes: Vec<(&str, u64)> = failures.into_iter().collect();
    modes.sort_by(|a, b| a.0.cmp(b.0));
    for (mode, n) in modes {
        if n > 0 {
            rows.push((format!("fail:{mode}"), n));
        }
    }
    rows
}

/// Renders census rows (from [`census_rows`]) as the outcome-census table.
pub fn render_census(rows: &[(String, u64)]) -> String {
    let total: u64 = rows.iter().map(|(_, n)| *n).sum();
    let mut t = Table::new(&["outcome", "trials", "%"]);
    for (label, n) in rows {
        t.row_owned(vec![label.clone(), n.to_string(), pct(*n, total)]);
    }
    format!("outcome census ({total} trials)\n{}", t.render())
}

/// Trials and failures for one slice (a category or a unit).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct Slice {
    trials: u64,
    failed: u64,
}

/// Aggregated view of a campaign trace, ready for rendering.
///
/// Build with [`TelemetryReport::from_events`] from a stream already
/// validated by `tfsim_obs::parse_trace` (header first, known schema).
#[derive(Debug, Clone)]
pub struct TelemetryReport {
    seed: u64,
    benchmarks: Vec<String>,
    start_points: u64,
    trials_per_start_point: u64,
    inject_window: u64,
    monitor_cycles: u64,
    trials: u64,
    matched: u64,
    gray: u64,
    quarantined: u64,
    modes: BTreeMap<String, u64>,
    by_category: BTreeMap<String, Slice>,
    by_unit: BTreeMap<String, Slice>,
    propagation: BTreeMap<(String, String), u64>,
    fail_latency: Histogram,
    match_latency: Histogram,
    divergence_latency: Histogram,
    phase_ns: BTreeMap<String, u64>,
    eligible_bits: Option<u64>,
    wall_ns: Option<u64>,
    prune: Option<PruneDispositions>,
}

impl TelemetryReport {
    /// Aggregates an event stream into a report.
    ///
    /// Returns an error if the stream lacks a `CampaignStart` header or if
    /// the `CampaignEnd` footer's totals disagree with the trial events —
    /// a truncated or corrupted trace fails loudly instead of producing a
    /// quietly wrong report.
    pub fn from_events(events: &[Event]) -> Result<TelemetryReport, String> {
        let header = match events.first() {
            Some(Event::CampaignStart {
                seed,
                benchmarks,
                start_points,
                trials_per_start_point,
                inject_window,
                monitor_cycles,
                ..
            }) => (
                *seed,
                benchmarks.clone(),
                *start_points,
                *trials_per_start_point,
                *inject_window,
                *monitor_cycles,
            ),
            _ => return Err("trace does not begin with a campaign_start event".to_string()),
        };
        let mut report = TelemetryReport {
            seed: header.0,
            benchmarks: header.1,
            start_points: header.2,
            trials_per_start_point: header.3,
            inject_window: header.4,
            monitor_cycles: header.5,
            trials: 0,
            matched: 0,
            gray: 0,
            quarantined: 0,
            modes: BTreeMap::new(),
            by_category: BTreeMap::new(),
            by_unit: BTreeMap::new(),
            propagation: BTreeMap::new(),
            fail_latency: Histogram::new(),
            match_latency: Histogram::new(),
            divergence_latency: Histogram::new(),
            phase_ns: BTreeMap::new(),
            eligible_bits: None,
            wall_ns: None,
            prune: None,
        };
        for ev in &events[1..] {
            match ev {
                Event::Trial {
                    inject_cycle,
                    category,
                    unit,
                    outcome,
                    mode,
                    detect_cycle,
                    divergence_cycle,
                    diverged_unit,
                    ..
                } => {
                    report.trials += 1;
                    let failed = outcome == "fail";
                    match outcome.as_str() {
                        "match" => report.matched += 1,
                        "gray" => report.gray += 1,
                        "fail" => {
                            let label = mode.clone().unwrap_or_else(|| "?".to_string());
                            *report.modes.entry(label).or_insert(0) += 1;
                        }
                        other => return Err(format!("unknown trial outcome {other:?}")),
                    }
                    let cat = report.by_category.entry(category.clone()).or_default();
                    cat.trials += 1;
                    cat.failed += failed as u64;
                    let unit_label = unit.clone().unwrap_or_else(|| "(shared)".to_string());
                    let u = report.by_unit.entry(unit_label.clone()).or_default();
                    u.trials += 1;
                    u.failed += failed as u64;
                    let latency = detect_cycle.saturating_sub(*inject_cycle);
                    match outcome.as_str() {
                        "fail" => report.fail_latency.record(latency),
                        "match" => report.match_latency.record(latency),
                        _ => {}
                    }
                    if let Some(div) = divergence_cycle {
                        report.divergence_latency.record(div.saturating_sub(*inject_cycle));
                        let to = diverged_unit.clone().unwrap_or_else(|| "(global)".to_string());
                        *report.propagation.entry((unit_label, to)).or_insert(0) += 1;
                    }
                }
                Event::Phase { phase, wall_ns, .. } => {
                    *report.phase_ns.entry(phase.clone()).or_insert(0) += wall_ns;
                }
                Event::Quarantine { .. } => {
                    report.quarantined += 1;
                }
                Event::CampaignEnd {
                    trials,
                    matched,
                    gray,
                    failed,
                    eligible_bits,
                    wall_ns,
                    quarantined,
                    prune,
                } => {
                    let failed_seen: u64 = report.modes.values().sum();
                    if (*trials, *matched, *gray, *failed)
                        != (report.trials, report.matched, report.gray, failed_seen)
                    {
                        return Err(format!(
                            "campaign_end totals ({trials} trials, {matched}/{gray}/{failed}) \
                             disagree with the {} trial events seen ({}/{}/{}) — truncated trace?",
                            report.trials, report.matched, report.gray, failed_seen
                        ));
                    }
                    if *quarantined != report.quarantined {
                        return Err(format!(
                            "campaign_end claims {quarantined} quarantined trials but the \
                             trace carries {} quarantine events — truncated trace?",
                            report.quarantined
                        ));
                    }
                    report.eligible_bits = Some(*eligible_bits);
                    report.wall_ns = Some(*wall_ns);
                    report.prune = *prune;
                }
                Event::CampaignStart { .. } => {
                    return Err("duplicate campaign_start event".to_string());
                }
            }
        }
        Ok(report)
    }

    /// Total trials aggregated.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// The outcome census rows (shared shape with the untraced path).
    pub fn census(&self) -> Vec<(String, u64)> {
        census_rows(self.matched, self.gray, self.modes.iter().map(|(m, n)| (m.as_str(), *n)))
    }

    /// Renders the full report; `top_n` bounds the unit and propagation
    /// tables.
    pub fn render(&self, top_n: usize) -> String {
        let mut out = String::new();
        out.push_str("campaign telemetry report\n");
        out.push_str(&format!(
            "  seed {} · {} benchmarks · {} start points × {} trials · inject window {} · monitor {} cycles\n",
            self.seed,
            self.benchmarks.len(),
            self.start_points,
            self.trials_per_start_point,
            self.inject_window,
            self.monitor_cycles,
        ));
        if let Some(bits) = self.eligible_bits {
            out.push_str(&format!("  eligible bits: {bits}\n"));
        }
        if let Some(ns) = self.wall_ns {
            if ns > 0 {
                out.push_str(&format!("  campaign wall clock: {:.2}s\n", ns as f64 / 1e9));
            }
        }
        out.push('\n');
        out.push_str(&render_census(&self.census()));

        out.push_str("\nvulnerability by category (95% Wilson CI)\n");
        out.push_str(&render_slices(&self.by_category, usize::MAX));

        out.push_str(&format!("\ntop {} vulnerable units (95% Wilson CI)\n", top_n));
        out.push_str(&render_slices(&self.by_unit, top_n));

        if !self.propagation.is_empty() {
            out.push_str("\nfault propagation (injected unit → first diverging unit)\n");
            let mut pairs: Vec<(&(String, String), &u64)> = self.propagation.iter().collect();
            pairs.sort_by(|a, b| b.1.cmp(a.1).then_with(|| a.0.cmp(b.0)));
            let mut t = Table::new(&["injected", "diverged", "trials"]);
            for ((from, to), n) in pairs.into_iter().take(top_n) {
                t.row_owned(vec![from.clone(), to.clone(), n.to_string()]);
            }
            out.push_str(&t.render());
        }

        out.push('\n');
        out.push_str(&self.fail_latency.render("cycles to failure detection"));
        out.push('\n');
        out.push_str(&self.match_latency.render("cycles to reconvergence (µarch match)"));
        out.push('\n');
        out.push_str(&self.divergence_latency.render("cycles to first µarch divergence"));

        if !self.phase_ns.is_empty() {
            out.push_str("\nphase wall-clock totals\n");
            let mut t = Table::new(&["phase", "total ms"]);
            for phase in ["warmup", "prepare", "advance", "monitor"] {
                if let Some(ns) = self.phase_ns.get(phase) {
                    t.row_owned(vec![phase.to_string(), format!("{:.1}", *ns as f64 / 1e6)]);
                }
            }
            for (phase, ns) in &self.phase_ns {
                if !matches!(phase.as_str(), "warmup" | "prepare" | "advance" | "monitor") {
                    t.row_owned(vec![phase.clone(), format!("{:.1}", *ns as f64 / 1e6)]);
                }
            }
            out.push_str(&t.render());
        }
        if let Some(p) = &self.prune {
            // Pruner accounting: how the planned census volume was
            // discharged. Only simulated sites ran the pipeline; the rest
            // were proved masked from the golden access footprint or
            // multiplied out from an equivalence-class representative.
            let total = p.total();
            out.push_str(&format!(
                "\npruner dispositions: {} proved dead ({}), {} class-collapsed ({}), \
                 {} simulated ({}) of {} sites\n",
                p.proved_dead,
                pct(p.proved_dead, total),
                p.class_collapsed,
                pct(p.class_collapsed, total),
                p.simulated,
                pct(p.simulated, total),
                total,
            ));
        }
        if self.quarantined > 0 {
            // Harness health, not an outcome: quarantined trials are
            // panics the containment backstop caught, kept out of the
            // census above (see DESIGN.md on corrupted-state hardening).
            let planned = self.trials + self.quarantined;
            out.push_str(&format!(
                "\nquarantined trials: {} of {} planned ({}) — harness escapes, not outcomes\n",
                self.quarantined,
                planned,
                pct(self.quarantined, planned),
            ));
        }
        out
    }
}

/// Renders a vulnerability table for named slices, most vulnerable first.
fn render_slices(slices: &BTreeMap<String, Slice>, top_n: usize) -> String {
    let mut rows: Vec<(&String, &Slice)> = slices.iter().collect();
    rows.sort_by(|a, b| {
        let ra = rate(a.1);
        let rb = rate(b.1);
        rb.total_cmp(&ra).then_with(|| a.0.cmp(b.0))
    });
    let mut t = Table::new(&["slice", "trials", "failed", "fail %", "ci ±"]);
    for (name, s) in rows.into_iter().take(top_n) {
        let ci = wilson_ci(s.failed, s.trials, Confidence::P95);
        t.row_owned(vec![
            name.clone(),
            s.trials.to_string(),
            s.failed.to_string(),
            pct(s.failed, s.trials),
            format!("{:.1}", 100.0 * ci.half_width),
        ]);
    }
    t.render()
}

fn rate(s: &Slice) -> f64 {
    if s.trials == 0 {
        0.0
    } else {
        s.failed as f64 / s.trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tfsim_obs::SCHEMA_VERSION;

    fn trial(
        category: &str,
        unit: Option<&str>,
        outcome: &str,
        mode: Option<&str>,
        inject: u64,
        detect: u64,
        div: Option<(u64, &str)>,
    ) -> Event {
        Event::Trial {
            benchmark: 0,
            start_point: 0,
            trial: 0,
            target: 0,
            inject_cycle: inject,
            category: category.to_string(),
            kind: "latch".to_string(),
            unit: unit.map(str::to_string),
            outcome: outcome.to_string(),
            mode: mode.map(str::to_string),
            detect_cycle: detect,
            divergence_cycle: div.map(|(c, _)| c),
            diverged_unit: div.map(|(_, u)| u.to_string()),
            valid_instructions: 0,
        }
    }

    fn sample_stream() -> Vec<Event> {
        vec![
            Event::CampaignStart {
                schema: SCHEMA_VERSION,
                seed: 11,
                benchmarks: vec!["gzip-like".to_string()],
                start_points: 1,
                trials_per_start_point: 4,
                inject_window: 100,
                monitor_cycles: 2000,
            },
            Event::Phase {
                benchmark: 0,
                start_point: 0,
                phase: "warmup".to_string(),
                wall_ns: 2_000_000,
            },
            trial("rob", Some("rob"), "fail", Some("regfile"), 10, 90, Some((12, "rename"))),
            trial("rob", Some("rob"), "match", None, 5, 40, Some((7, "rob"))),
            trial("bpred", Some("bpred"), "gray", None, 0, 2000, None),
            trial("rob", Some("rob"), "fail", Some("ctrl"), 3, 50, Some((4, "rename"))),
            Event::CampaignEnd {
                trials: 4,
                matched: 1,
                gray: 1,
                failed: 2,
                quarantined: 0,
                eligible_bits: 512,
                wall_ns: 9_000_000,
                prune: None,
            },
        ]
    }

    #[test]
    fn census_rows_omit_zero_modes_in_alphabetical_order() {
        let rows = census_rows(10, 3, [("regfile", 2), ("ctrl", 1), ("mem", 0)]);
        let labels: Vec<&str> = rows.iter().map(|(l, _)| l.as_str()).collect();
        assert_eq!(labels, ["match", "gray", "fail:ctrl", "fail:regfile"]);
        assert_eq!(rows[2].1, 1);
        assert_eq!(rows[3].1, 2);
    }

    #[test]
    fn report_aggregates_the_stream() {
        let report = TelemetryReport::from_events(&sample_stream()).unwrap();
        assert_eq!(report.trials(), 4);
        assert_eq!(
            report.census(),
            vec![
                ("match".to_string(), 1),
                ("gray".to_string(), 1),
                ("fail:ctrl".to_string(), 1),
                ("fail:regfile".to_string(), 1),
            ]
        );
        let rendered = report.render(10);
        assert!(rendered.contains("outcome census (4 trials)"));
        assert!(rendered.contains("fail:regfile"));
        assert!(rendered.contains("rename"), "propagation target missing:\n{rendered}");
        assert!(rendered.contains("cycles to failure detection"));
        assert!(rendered.contains("warmup"));
        assert!(rendered.contains("eligible bits: 512"));
    }

    #[test]
    fn quarantine_events_reach_the_footer_not_the_census() {
        let mut events = sample_stream();
        let end = events.pop().unwrap();
        events.push(Event::Quarantine {
            benchmark: 0,
            start_point: 0,
            trial: 3,
            target: 77,
            inject_cycle: 9,
            panic_msg: "forced mid-trial panic".to_string(),
        });
        let Event::CampaignEnd { trials, matched, gray, failed, eligible_bits, wall_ns, .. } = end
        else {
            unreachable!()
        };
        events.push(Event::CampaignEnd {
            trials,
            matched,
            gray,
            failed,
            quarantined: 1,
            eligible_bits,
            wall_ns,
            prune: None,
        });
        let report = TelemetryReport::from_events(&events).unwrap();
        // The census counts only classified trials.
        assert_eq!(report.trials(), 4);
        let rendered = report.render(10);
        assert!(rendered.contains("outcome census (4 trials)"));
        assert!(
            rendered.contains("quarantined trials: 1 of 5 planned"),
            "missing quarantine footer:\n{rendered}"
        );

        // And the footer cross-check catches a count mismatch.
        if let Some(Event::CampaignEnd { quarantined, .. }) = events.last_mut() {
            *quarantined = 2;
        }
        let err = TelemetryReport::from_events(&events).unwrap_err();
        assert!(err.contains("quarantine"), "got: {err}");
    }

    #[test]
    fn pruned_footer_renders_disposition_line() {
        let mut events = sample_stream();
        if let Some(Event::CampaignEnd { prune, .. }) = events.last_mut() {
            *prune =
                Some(PruneDispositions { proved_dead: 90, class_collapsed: 6, simulated: 4 });
        }
        let report = TelemetryReport::from_events(&events).unwrap();
        let rendered = report.render(10);
        assert!(
            rendered.contains("pruner dispositions: 90 proved dead"),
            "missing pruner footer:\n{rendered}"
        );
        // Unpruned streams keep the pre-pruner layout.
        let plain = TelemetryReport::from_events(&sample_stream()).unwrap().render(10);
        assert!(!plain.contains("pruner dispositions"), "{plain}");
    }

    #[test]
    fn footer_mismatch_is_rejected() {
        let mut events = sample_stream();
        if let Some(Event::CampaignEnd { matched, .. }) = events.last_mut() {
            *matched = 99;
        }
        let err = TelemetryReport::from_events(&events).unwrap_err();
        assert!(err.contains("disagree"), "got: {err}");
    }

    #[test]
    fn headerless_stream_is_rejected() {
        let events = vec![trial("rob", None, "gray", None, 0, 1, None)];
        assert!(TelemetryReport::from_events(&events).is_err());
    }
}
