#![warn(missing_docs)]

//! # tfsim-bitstate — the bit-level state registry
//!
//! The paper's experiments require a *latch-accurate* model: every state
//! element (latch bit or RAM cell) present in the implementation must be
//! enumerable, categorized by logical function and storage kind, and
//! individually flippable, and the entire machine state must be comparable
//! against a golden run.
//!
//! This crate provides that machinery without dictating how the pipeline
//! stores its state: pipeline structures keep ordinary Rust fields and
//! implement [`VisitState`], walking each field through a [`StateVisitor`]
//! with its [`FieldMeta`] (category, storage kind, injectability). Four
//! visitors implement the experiments:
//!
//! * [`Census`] — Table 1: bits of latches and RAMs per category.
//! * [`BitCount`] — the eligible-bit total under an [`InjectionMask`].
//! * [`FlipBit`] — flips the *k*-th eligible bit and reports what it hit.
//! * [`Fingerprint`] — a 128-bit hash of every bit of machine state, used
//!   for the µArch Match comparison against the golden run.
//!
//! Cache and predictor arrays are *fingerprinted but not injectable*
//! (`injectable = false`), matching the paper's exclusion of easily
//! protected or correctness-neutral RAM arrays from the campaigns.
//!
//! ```
//! use tfsim_bitstate::{Category, Census, FieldMeta, StateVisitor, StorageKind, VisitState};
//!
//! struct Stage { pc: u64, valid: bool }
//! impl VisitState for Stage {
//!     fn visit_state(&mut self, v: &mut dyn StateVisitor) {
//!         tfsim_bitstate::visit_pc(v, StorageKind::Latch, &mut self.pc);
//!         tfsim_bitstate::visit_bool(
//!             v,
//!             FieldMeta::new(Category::Valid, StorageKind::Latch),
//!             &mut self.valid,
//!         );
//!     }
//! }
//!
//! let mut stage = Stage { pc: 0x1000, valid: true };
//! let mut census = Census::new();
//! stage.visit_state(&mut census);
//! assert_eq!(census.bits(Category::Pc, StorageKind::Latch), 62);
//! assert_eq!(census.bits(Category::Valid, StorageKind::Latch), 1);
//! ```

use std::fmt;

pub mod sliced;

pub use sliced::{SlicedField, SlicedState};

/// Logical function of a bit of state — the categories of the paper's
/// Table 1, plus the two categories introduced by the protection hardware
/// (`Ecc`, `Parity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// 64-bit address fields for memory operations.
    Addr,
    /// Architectural register free list.
    ArchFreelist,
    /// Architectural register alias table.
    ArchRat,
    /// Miscellaneous control state (decoded control words, state machines).
    Ctrl,
    /// Instruction input and output operands.
    Data,
    /// Parts of the instruction word carried with each instruction.
    Insn,
    /// Program counter fields (62 bits: byte address without the aligned
    /// low two bits).
    Pc,
    /// Control state associated with queues (head/tail pointers, counts).
    Qctrl,
    /// Register file entries and scoreboard bits.
    Regfile,
    /// Physical register file pointers (7 bits for 80 registers).
    Regptr,
    /// Reorder buffer tags (6 bits for 64 entries).
    Robptr,
    /// Speculative register free list.
    SpecFreelist,
    /// Speculative register alias table.
    SpecRat,
    /// Valid bits throughout the pipeline.
    Valid,
    /// ECC check bits added by the protection mechanisms.
    Ecc,
    /// Parity bits added by the protection mechanisms.
    Parity,
}

impl Category {
    /// The fourteen baseline categories of Table 1 (paper order).
    pub const BASELINE: [Category; 14] = [
        Category::Addr,
        Category::ArchFreelist,
        Category::ArchRat,
        Category::Ctrl,
        Category::Data,
        Category::Insn,
        Category::Pc,
        Category::Qctrl,
        Category::Regfile,
        Category::Regptr,
        Category::Robptr,
        Category::SpecFreelist,
        Category::SpecRat,
        Category::Valid,
    ];

    /// All categories including the protection-introduced ones.
    pub const ALL: [Category; 16] = [
        Category::Addr,
        Category::ArchFreelist,
        Category::ArchRat,
        Category::Ctrl,
        Category::Data,
        Category::Insn,
        Category::Pc,
        Category::Qctrl,
        Category::Regfile,
        Category::Regptr,
        Category::Robptr,
        Category::SpecFreelist,
        Category::SpecRat,
        Category::Valid,
        Category::Ecc,
        Category::Parity,
    ];

    /// The lowercase label used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Category::Addr => "addr",
            Category::ArchFreelist => "archfreelist",
            Category::ArchRat => "archrat",
            Category::Ctrl => "ctrl",
            Category::Data => "data",
            Category::Insn => "insn",
            Category::Pc => "pc",
            Category::Qctrl => "qctrl",
            Category::Regfile => "regfile",
            Category::Regptr => "regptr",
            Category::Robptr => "robptr",
            Category::SpecFreelist => "specfreelist",
            Category::SpecRat => "specrat",
            Category::Valid => "valid",
            Category::Ecc => "ecc",
            Category::Parity => "parity",
        }
    }

    fn index(self) -> usize {
        Category::ALL.iter().position(|c| *c == self).expect("category in ALL")
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a state element is implemented as an edge-triggered latch or as
/// a cell in a RAM array. The paper runs separate campaigns for
/// latches-only and latches+RAMs because the two have different raw fault
/// rates and protection options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageKind {
    /// Pipeline latch (edge-triggered flip-flop).
    Latch,
    /// RAM array cell.
    Ram,
}

impl StorageKind {
    /// Short lowercase label for reports and traces.
    pub fn label(self) -> &'static str {
        match self {
            StorageKind::Latch => "latch",
            StorageKind::Ram => "ram",
        }
    }
}

impl fmt::Display for StorageKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Metadata attached to every visited field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldMeta {
    /// Logical function.
    pub category: Category,
    /// Storage implementation.
    pub kind: StorageKind,
    /// Whether fault-injection campaigns may target this field. Cache and
    /// predictor arrays are fingerprinted but not injectable.
    pub injectable: bool,
}

impl FieldMeta {
    /// Injectable state with the given category and kind.
    pub fn new(category: Category, kind: StorageKind) -> FieldMeta {
        FieldMeta { category, kind, injectable: true }
    }

    /// Fingerprint-only state (cache/predictor arrays): never injected.
    pub fn shadow(category: Category, kind: StorageKind) -> FieldMeta {
        FieldMeta { category, kind, injectable: false }
    }
}

/// A named subtree of machine state used for hierarchical fingerprinting.
///
/// [`VisitState`] implementations may bracket groups of fields between
/// [`StateVisitor::enter_unit`] / [`StateVisitor::exit_unit`] calls. Each
/// unit carries a monotonic *generation stamp*: a counter the machine
/// advances whenever the unit's content may have changed. Fingerprint
/// visitors use the stamp to skip rehashing units that provably did not
/// change since the last walk; all other visitors ignore units entirely,
/// so field order, bit numbering, and injection targets are unaffected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum UnitId {
    /// Front-end latches: fetch control, fetch stages/queue, decode and
    /// rename pipe slots.
    Front,
    /// Register rename state: speculative and architectural RATs and free
    /// lists.
    Rename,
    /// Issue scheduler (instruction queue) entries.
    Sched,
    /// Reorder buffer entries.
    Rob,
    /// Load/store queue entries.
    Lsq,
    /// Functional-unit pipeline latches.
    Fus,
    /// Physical register file (and its ECC shadow when enabled).
    Regfile,
    /// Architectural bookkeeping: speculative-ready bits, miss handling
    /// registers, retire PC, watchdog.
    ArchCtrl,
    /// Branch direction predictor tables and global history.
    Bpred,
    /// Branch target buffer.
    Btb,
    /// Return address stack.
    Ras,
    /// Instruction cache tag/valid/LRU arrays.
    Icache,
    /// Data cache tag/valid/LRU arrays.
    Dcache,
    /// Store-set memory dependence predictor.
    StoreSets,
}

impl UnitId {
    /// Every unit, in the fixed order `Pipeline::visit_state` emits them.
    pub const ALL: [UnitId; 14] = [
        UnitId::Front,
        UnitId::Rename,
        UnitId::Sched,
        UnitId::Rob,
        UnitId::Lsq,
        UnitId::Fus,
        UnitId::Regfile,
        UnitId::ArchCtrl,
        UnitId::Bpred,
        UnitId::Btb,
        UnitId::Ras,
        UnitId::Icache,
        UnitId::Dcache,
        UnitId::StoreSets,
    ];

    /// Number of units.
    pub const COUNT: usize = UnitId::ALL.len();

    /// Position of this unit in [`UnitId::ALL`].
    pub fn index(self) -> usize {
        self as usize
    }

    /// Bitmask (bit `index()`) of the units whose hashes differ between
    /// two per-unit fingerprint arrays — the diverged-unit set the
    /// deep-trace mode samples at each microarchitectural check. `u16`
    /// because [`UnitId::COUNT`] is 14; a unit bracketing change that
    /// overflows it would fail the width assertion in every build.
    pub fn diverged_mask(a: &[u128; UnitId::COUNT], b: &[u128; UnitId::COUNT]) -> u16 {
        const { assert!(UnitId::COUNT <= u16::BITS as usize) };
        let mut mask = 0u16;
        for i in 0..UnitId::COUNT {
            if a[i] != b[i] {
                mask |= 1 << i;
            }
        }
        mask
    }

    /// The units set in a [`UnitId::diverged_mask`] bitmask, in
    /// [`UnitId::ALL`] order.
    pub fn from_mask(mask: u16) -> impl Iterator<Item = UnitId> {
        UnitId::ALL.into_iter().filter(move |u| mask & (1 << u.index()) != 0)
    }

    /// Short lowercase label for reports.
    pub fn label(self) -> &'static str {
        match self {
            UnitId::Front => "front",
            UnitId::Rename => "rename",
            UnitId::Sched => "sched",
            UnitId::Rob => "rob",
            UnitId::Lsq => "lsq",
            UnitId::Fus => "fus",
            UnitId::Regfile => "regfile",
            UnitId::ArchCtrl => "archctrl",
            UnitId::Bpred => "bpred",
            UnitId::Btb => "btb",
            UnitId::Ras => "ras",
            UnitId::Icache => "icache",
            UnitId::Dcache => "dcache",
            UnitId::StoreSets => "storesets",
        }
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Access-log coverage tier of a fingerprint unit.
///
/// The word-parallel engine and the analytic masking pruner both consume
/// golden-run read/write timelines, and a timeline is only trustworthy for
/// a unit whose accessors actually log. Before this enum existed that
/// coverage was implicit — an untracked structure silently produced an
/// empty timeline, which the conservative consumers treated as "always
/// simulate", quietly degrading to no-prune. Every unit now declares its
/// tier explicitly, and `tfsim-uarch` tests pin the declaration against
/// the pipeline's actual instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Loggability {
    /// Logged whenever access tracking is on: the frozen tier the
    /// word-parallel (sliced) engine's ride/heal proofs are audited
    /// against (LSQ, register file, MHRs).
    Core,
    /// Logged only under *extended* access tracking: structures whose
    /// instrumentation exists for the analytic pruner's dead-window
    /// proofs (front-end latches and fetch queue, rename tables,
    /// scheduler, ROB, functional units).
    Extended,
    /// Injectable state with no per-word access discipline: never
    /// logged, sites here are always simulated. Currently empty — kept
    /// so a future structure can opt out without redefining the tiers.
    Unlogged,
    /// Fingerprint-only shadow state (`FieldMeta::shadow`): not
    /// injectable, so no fault site can land there and no timeline is
    /// needed.
    Shadow,
}

impl UnitId {
    /// The declared access-log coverage tier of this unit.
    pub fn loggability(self) -> Loggability {
        match self {
            UnitId::Lsq | UnitId::Regfile | UnitId::ArchCtrl => Loggability::Core,
            UnitId::Front
            | UnitId::Rename
            | UnitId::Sched
            | UnitId::Rob
            | UnitId::Fus => Loggability::Extended,
            UnitId::Bpred
            | UnitId::Btb
            | UnitId::Ras
            | UnitId::Icache
            | UnitId::Dcache
            | UnitId::StoreSets => Loggability::Shadow,
        }
    }
}

/// A visitor over every bit of machine state.
///
/// Implementations receive each field exactly once per walk, in a fixed
/// deterministic order. Fields are at most 64 bits wide; wider structures
/// are visited as arrays.
pub trait StateVisitor {
    /// Visits one field of `width` bits (1 ≤ width ≤ 64) stored in the low
    /// bits of `bits`. The visitor may mutate the value (fault injection).
    fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64);

    /// Visits a RAM array of equally sized entries. The default forwards to
    /// [`StateVisitor::field`] per entry; fingerprinting overrides this for
    /// speed.
    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        for e in entries.iter_mut() {
            self.field(meta, entry_width, e);
        }
    }

    /// Marks the start of fingerprint unit `unit`, whose content is
    /// summarized by the machine-provided generation stamp `gen` (a counter
    /// that advances whenever the unit's bits may have changed).
    ///
    /// Returning `false` asks the machine to skip the unit's fields and not
    /// call [`StateVisitor::exit_unit`]: the visitor already knows the
    /// unit's contribution (e.g. a cached subhash for an unchanged `gen`).
    /// Visitors that must see every field — censuses, bit counts, fault
    /// injection, snapshots — keep this default, which visits everything.
    /// Units never nest.
    fn enter_unit(&mut self, _unit: UnitId, _gen: u64) -> bool {
        true
    }

    /// Marks the end of unit `unit`. Only called when the matching
    /// [`StateVisitor::enter_unit`] returned `true`.
    fn exit_unit(&mut self, _unit: UnitId) {}
}

/// A structure exposing its state bits to visitors.
pub trait VisitState {
    /// Walks every state bit in a fixed deterministic order.
    fn visit_state(&mut self, v: &mut dyn StateVisitor);
}

/// Visits a `bool` as a 1-bit field.
pub fn visit_bool(v: &mut dyn StateVisitor, meta: FieldMeta, b: &mut bool) {
    let mut bits = *b as u64;
    v.field(meta, 1, &mut bits);
    *b = bits & 1 != 0;
}

/// Visits a program counter stored as a byte address whose low two bits are
/// architecturally zero: exposes bits 63..2 as a 62-bit `pc` field, the
/// paper's PC representation.
pub fn visit_pc(v: &mut dyn StateVisitor, kind: StorageKind, pc: &mut u64) {
    let mut bits = *pc >> 2;
    v.field(FieldMeta::new(Category::Pc, kind), 62, &mut bits);
    *pc = bits << 2;
}

fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Which bits a fault-injection campaign may target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionMask {
    /// All injectable latches and RAM cells (the paper's `l+r` campaigns).
    LatchesAndRams,
    /// Injectable latches only (the paper's `l` campaigns).
    LatchesOnly,
}

impl InjectionMask {
    /// Whether a field with `meta` is eligible under this mask.
    pub fn eligible(self, meta: FieldMeta) -> bool {
        meta.injectable
            && match self {
                InjectionMask::LatchesAndRams => true,
                InjectionMask::LatchesOnly => meta.kind == StorageKind::Latch,
            }
    }
}

/// Counts state bits per `(category, kind)` — Table 1.
#[derive(Debug, Clone, Default)]
pub struct Census {
    counts: [[u64; 2]; Category::ALL.len()],
    shadow_bits: u64,
}

impl Census {
    /// Creates an empty census.
    pub fn new() -> Census {
        Census::default()
    }

    /// Injectable bits recorded for a category/kind pair.
    pub fn bits(&self, category: Category, kind: StorageKind) -> u64 {
        self.counts[category.index()][kind as usize]
    }

    /// Total injectable latch bits.
    pub fn latch_total(&self) -> u64 {
        Category::ALL.iter().map(|c| self.bits(*c, StorageKind::Latch)).sum()
    }

    /// Total injectable RAM bits.
    pub fn ram_total(&self) -> u64 {
        Category::ALL.iter().map(|c| self.bits(*c, StorageKind::Ram)).sum()
    }

    /// All injectable bits.
    pub fn total(&self) -> u64 {
        self.latch_total() + self.ram_total()
    }

    /// Bits visited but excluded from injection (cache/predictor state).
    pub fn shadow_total(&self) -> u64 {
        self.shadow_bits
    }

    /// Renders the census as a Table 1-style fixed-width table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>12} {:>12}\n",
            "category", "latch bits", "ram bits"
        ));
        for c in Category::ALL {
            let l = self.bits(c, StorageKind::Latch);
            let r = self.bits(c, StorageKind::Ram);
            if l == 0 && r == 0 {
                continue;
            }
            out.push_str(&format!("{:<14} {:>12} {:>12}\n", c.label(), l, r));
        }
        out.push_str(&format!(
            "{:<14} {:>12} {:>12}\n",
            "total",
            self.latch_total(),
            self.ram_total()
        ));
        out
    }
}

impl StateVisitor for Census {
    fn field(&mut self, meta: FieldMeta, width: u32, _bits: &mut u64) {
        debug_assert!((1..=64).contains(&width));
        if meta.injectable {
            self.counts[meta.category.index()][meta.kind as usize] += width as u64;
        } else {
            self.shadow_bits += width as u64;
        }
    }

    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        let bits = entry_width as u64 * entries.len() as u64;
        if meta.injectable {
            self.counts[meta.category.index()][meta.kind as usize] += bits;
        } else {
            self.shadow_bits += bits;
        }
    }
}

/// Counts the eligible bits under an [`InjectionMask`]; the fault selector
/// draws a uniform index in `[0, count)`.
#[derive(Debug, Clone, Copy)]
pub struct BitCount {
    mask: InjectionMask,
    /// Number of eligible bits visited.
    pub count: u64,
}

impl BitCount {
    /// Creates a counter for `mask`.
    pub fn new(mask: InjectionMask) -> BitCount {
        BitCount { mask, count: 0 }
    }
}

impl StateVisitor for BitCount {
    fn field(&mut self, meta: FieldMeta, width: u32, _bits: &mut u64) {
        if self.mask.eligible(meta) {
            self.count += width as u64;
        }
    }

    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        if self.mask.eligible(meta) {
            self.count += entry_width as u64 * entries.len() as u64;
        }
    }
}

/// Description of the bit a [`FlipBit`] visitor flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlippedBit {
    /// Category of the containing field.
    pub category: Category,
    /// Storage kind of the containing field.
    pub kind: StorageKind,
    /// Bit offset within the field.
    pub bit: u32,
    /// Field width.
    pub width: u32,
    /// Fingerprint unit enclosing the field at flip time, if any — the
    /// injection site for per-unit vulnerability attribution.
    pub unit: Option<UnitId>,
}

/// Flips the `target`-th eligible bit (in visit order) under a mask.
#[derive(Debug, Clone, Copy)]
pub struct FlipBit {
    mask: InjectionMask,
    target: u64,
    pos: u64,
    in_unit: Option<UnitId>,
    /// Set once the target bit has been flipped.
    pub flipped: Option<FlippedBit>,
}

impl FlipBit {
    /// Creates a visitor that will flip eligible bit number `target`.
    pub fn new(mask: InjectionMask, target: u64) -> FlipBit {
        FlipBit { mask, target, pos: 0, in_unit: None, flipped: None }
    }
}

impl StateVisitor for FlipBit {
    fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64) {
        if self.flipped.is_some() || !self.mask.eligible(meta) {
            return;
        }
        let w = width as u64;
        if self.target < self.pos + w {
            let bit = (self.target - self.pos) as u32;
            *bits ^= 1u64 << bit;
            *bits &= width_mask(width);
            self.flipped = Some(FlippedBit {
                category: meta.category,
                kind: meta.kind,
                bit,
                width,
                unit: self.in_unit,
            });
        }
        self.pos += w;
    }

    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        if self.flipped.is_some() || !self.mask.eligible(meta) {
            return;
        }
        let total = entry_width as u64 * entries.len() as u64;
        if self.target < self.pos + total {
            let offset = self.target - self.pos;
            let entry = (offset / entry_width as u64) as usize;
            let bit = (offset % entry_width as u64) as u32;
            entries[entry] ^= 1u64 << bit;
            entries[entry] &= width_mask(entry_width);
            self.flipped = Some(FlippedBit {
                category: meta.category,
                kind: meta.kind,
                bit,
                width: entry_width,
                unit: self.in_unit,
            });
        }
        self.pos += total;
    }

    fn enter_unit(&mut self, unit: UnitId, _gen: u64) -> bool {
        // Track the enclosing unit for injection-site attribution, but keep
        // visiting everything: bit numbering must not depend on units.
        self.in_unit = Some(unit);
        true
    }

    fn exit_unit(&mut self, _unit: UnitId) {
        self.in_unit = None;
    }
}

/// 128-bit FNV-1a style fingerprint over every visited bit (including
/// non-injectable shadow state). Two machines with equal fingerprints are
/// treated as microarchitecturally identical.
///
/// The hash is *hierarchical*: each [`UnitId`] unit the machine brackets is
/// hashed into its own 128-bit subhash (starting from the FNV offset), and
/// the root mixes stray (non-unit) words and completed unit subhashes in
/// visit order. This makes the root reconstructible from cached subhashes —
/// see [`CachedFingerprint`] — and lets a golden-run ladder store per-unit
/// hashes for first-divergence attribution. Machines that declare no units
/// hash exactly as a flat FNV over their words.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    h: u128,
    sub: u128,
    in_unit: bool,
    units: [u128; UnitId::COUNT],
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fingerprint {
    /// Creates a fresh fingerprint accumulator.
    pub fn new() -> Fingerprint {
        Fingerprint { h: FNV128_OFFSET, sub: FNV128_OFFSET, in_unit: false, units: [0; UnitId::COUNT] }
    }

    /// The accumulated 128-bit root hash.
    pub fn value(&self) -> u128 {
        self.h
    }

    /// Subhash of one unit (0 if the machine never visited it).
    pub fn unit(&self, unit: UnitId) -> u128 {
        self.units[unit.index()]
    }

    /// All unit subhashes, indexed by [`UnitId::index`].
    pub fn unit_hashes(&self) -> &[u128; UnitId::COUNT] {
        &self.units
    }

    fn mix(&mut self, word: u64) {
        let acc = if self.in_unit { &mut self.sub } else { &mut self.h };
        *acc ^= word as u128;
        *acc = acc.wrapping_mul(FNV128_PRIME);
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl StateVisitor for Fingerprint {
    fn field(&mut self, _meta: FieldMeta, width: u32, bits: &mut u64) {
        debug_assert_eq!(*bits & !width_mask(width), 0, "field exceeds declared width {width}");
        self.mix(*bits);
    }

    fn array(&mut self, _meta: FieldMeta, _entry_width: u32, entries: &mut [u64]) {
        for e in entries.iter() {
            self.mix(*e);
        }
    }

    fn enter_unit(&mut self, _unit: UnitId, _gen: u64) -> bool {
        debug_assert!(!self.in_unit, "fingerprint units must not nest");
        self.sub = FNV128_OFFSET;
        self.in_unit = true;
        true
    }

    fn exit_unit(&mut self, unit: UnitId) {
        debug_assert!(self.in_unit, "exit_unit without enter_unit");
        self.in_unit = false;
        self.units[unit.index()] = self.sub;
        self.h ^= self.sub;
        self.h = self.h.wrapping_mul(FNV128_PRIME);
    }
}

/// Computes the fingerprint of a [`VisitState`] machine.
pub fn fingerprint_of(machine: &mut dyn VisitState) -> u128 {
    let mut fp = Fingerprint::new();
    machine.visit_state(&mut fp);
    fp.value()
}

/// An incremental fingerprint engine that caches per-unit subhashes keyed
/// by the generation stamps machines pass to [`StateVisitor::enter_unit`].
///
/// On a walk, a unit whose stamp matches the cached one is *skipped*
/// (`enter_unit` returns `false`) and its cached subhash is mixed into the
/// root, so the root always equals what [`fingerprint_of`] would compute —
/// without rehashing unchanged predictor and cache arrays.
///
/// # Correctness contract
///
/// A cache is valid for **one machine instance**, and only while every
/// state change between [`CachedFingerprint::fingerprint`] calls goes
/// through the machine's mutation API (which advances the generation
/// stamps). After out-of-band mutation — e.g. a [`FlipBit`] walk — call
/// [`CachedFingerprint::invalidate`] or use a fresh engine.
#[derive(Debug, Clone)]
pub struct CachedFingerprint {
    h: u128,
    sub: u128,
    active: Option<(UnitId, u64)>,
    cache: [Option<(u64, u128)>; UnitId::COUNT],
    units: [u128; UnitId::COUNT],
    seen: u16, // units visited this walk (duplicates would poison the cache)
    probe: Option<UnitId>, // walk only this unit (see `matches`)
    suspect: Option<UnitId>, // unit that mismatched golden on the last `matches`
    hits: u64,
    misses: u64,
}

impl CachedFingerprint {
    /// Creates an engine with an empty cache.
    pub fn new() -> CachedFingerprint {
        CachedFingerprint {
            h: FNV128_OFFSET,
            sub: FNV128_OFFSET,
            active: None,
            cache: [None; UnitId::COUNT],
            units: [0; UnitId::COUNT],
            seen: 0,
            probe: None,
            suspect: None,
            hits: 0,
            misses: 0,
        }
    }

    /// Fingerprints `machine`, reusing cached subhashes for units whose
    /// generation stamp is unchanged since the previous call. Equals
    /// [`fingerprint_of`] on the same machine.
    pub fn fingerprint(&mut self, machine: &mut dyn VisitState) -> u128 {
        self.h = FNV128_OFFSET;
        self.active = None;
        self.seen = 0;
        machine.visit_state(self);
        debug_assert!(self.active.is_none(), "unclosed fingerprint unit");
        self.h
    }

    /// Compares `machine` against a golden fingerprint row — the root hash
    /// plus the per-unit subhashes it was folded from — returning whether
    /// they match. Semantically this is `self.fingerprint(machine) ==
    /// golden_root`, but a diverged machine usually stays diverged *in the
    /// same unit* (a latent flip sits where it landed), so the unit that
    /// mismatched on the previous call is re-probed first, skipping the
    /// rest of the walk entirely while the divergence persists. This is
    /// what makes monitoring a latent fault cheap: steady-state checks hash
    /// one unit instead of the machine.
    ///
    /// The short-circuit decides "mismatch" from a single unequal subhash
    /// where the root comparison folds all of them; the two disagree only
    /// if distinct states collide in the 128-bit hash — the same exposure
    /// the root equality check itself always had.
    pub fn matches(
        &mut self,
        machine: &mut dyn VisitState,
        golden_root: u128,
        golden_units: &[u128; UnitId::COUNT],
    ) -> bool {
        if let Some(suspect) = self.suspect {
            if self.probe_unit(machine, suspect) != golden_units[suspect.index()] {
                return false;
            }
            // The old divergence healed (or was never in a unit): fall
            // through to the authoritative full walk.
            self.suspect = None;
        }
        if self.fingerprint(machine) == golden_root {
            return true;
        }
        self.suspect = UnitId::ALL
            .iter()
            .copied()
            .find(|u| self.units[u.index()] != golden_units[u.index()]);
        false
    }

    /// Rehashes only `unit` (cache rules unchanged) and returns its
    /// subhash; every other unit is skipped without being touched.
    fn probe_unit(&mut self, machine: &mut dyn VisitState, unit: UnitId) -> u128 {
        self.h = FNV128_OFFSET;
        self.active = None;
        self.seen = 0;
        self.probe = Some(unit);
        machine.visit_state(self);
        self.probe = None;
        debug_assert!(self.active.is_none(), "unclosed fingerprint unit");
        debug_assert!(
            self.seen & (1 << unit.index()) != 0,
            "probed unit {unit} was never visited by the machine"
        );
        self.units[unit.index()]
    }

    /// Drops every cached subhash. Required after mutating the machine
    /// behind the generation stamps' back (e.g. [`FlipBit`]).
    pub fn invalidate(&mut self) {
        self.cache = [None; UnitId::COUNT];
        self.suspect = None;
    }

    /// The unit whose subhash mismatched golden on the last failed
    /// [`CachedFingerprint::matches`] call, if the divergence was inside a
    /// unit. Cleared when a check passes (or when a suspect probe heals).
    /// This is the cheapest available first-divergence attribution: the
    /// engine already localized the mismatch while short-circuiting.
    pub fn suspect(&self) -> Option<UnitId> {
        self.suspect
    }

    /// Subhash of one unit as of the last [`CachedFingerprint::fingerprint`]
    /// call (0 if the machine never visited it).
    pub fn unit(&self, unit: UnitId) -> u128 {
        self.units[unit.index()]
    }

    /// All unit subhashes from the last walk, indexed by [`UnitId::index`].
    pub fn unit_hashes(&self) -> &[u128; UnitId::COUNT] {
        &self.units
    }

    /// Units served from cache across all walks.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Units rehashed across all walks.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn mix(&mut self, word: u64) {
        let acc = if self.active.is_some() { &mut self.sub } else { &mut self.h };
        *acc ^= word as u128;
        *acc = acc.wrapping_mul(FNV128_PRIME);
    }

    fn mix_unit(&mut self, sub: u128) {
        self.h ^= sub;
        self.h = self.h.wrapping_mul(FNV128_PRIME);
    }
}

impl Default for CachedFingerprint {
    fn default() -> Self {
        CachedFingerprint::new()
    }
}

impl StateVisitor for CachedFingerprint {
    fn field(&mut self, _meta: FieldMeta, width: u32, bits: &mut u64) {
        debug_assert_eq!(*bits & !width_mask(width), 0, "field exceeds declared width {width}");
        self.mix(*bits);
    }

    fn array(&mut self, _meta: FieldMeta, _entry_width: u32, entries: &mut [u64]) {
        for e in entries.iter() {
            self.mix(*e);
        }
    }

    fn enter_unit(&mut self, unit: UnitId, gen: u64) -> bool {
        debug_assert!(self.active.is_none(), "fingerprint units must not nest");
        debug_assert_eq!(
            self.seen & (1 << unit.index()),
            0,
            "unit {unit} visited twice in one walk — its cache entry would go stale"
        );
        self.seen |= 1 << unit.index();
        if self.probe.is_some_and(|p| p != unit) {
            // Probe walk for another unit: skip without touching the cache
            // (entries stay keyed by their recorded generations).
            return false;
        }
        if let Some((g, h)) = self.cache[unit.index()] {
            if g == gen {
                self.hits += 1;
                self.units[unit.index()] = h;
                self.mix_unit(h);
                return false;
            }
        }
        self.misses += 1;
        self.active = Some((unit, gen));
        self.sub = FNV128_OFFSET;
        true
    }

    fn exit_unit(&mut self, unit: UnitId) {
        let (active, gen) = self.active.take().expect("exit_unit without matching enter_unit");
        debug_assert_eq!(active, unit, "exit_unit for a different unit than enter_unit");
        self.cache[unit.index()] = Some((gen, self.sub));
        self.units[unit.index()] = self.sub;
        self.mix_unit(self.sub);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diverged_mask_flags_differing_units() {
        let a = [7u128; UnitId::COUNT];
        let mut b = a;
        assert_eq!(UnitId::diverged_mask(&a, &b), 0);
        assert_eq!(UnitId::from_mask(0).count(), 0);
        b[UnitId::Rob.index()] ^= 1;
        b[UnitId::Dcache.index()] ^= 99;
        let mask = UnitId::diverged_mask(&a, &b);
        let units: Vec<UnitId> = UnitId::from_mask(mask).collect();
        assert_eq!(units, vec![UnitId::Rob, UnitId::Dcache]);
        let all = UnitId::diverged_mask(&[0; UnitId::COUNT], &[1; UnitId::COUNT]);
        assert_eq!(UnitId::from_mask(all).count(), UnitId::COUNT);
    }

    struct Toy {
        pc: u64,
        data: u64,
        valid: bool,
        ram: Vec<u64>,
        shadow: u64,
    }

    impl VisitState for Toy {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            visit_pc(v, StorageKind::Latch, &mut self.pc);
            v.field(FieldMeta::new(Category::Data, StorageKind::Latch), 64, &mut self.data);
            visit_bool(v, FieldMeta::new(Category::Valid, StorageKind::Latch), &mut self.valid);
            v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 7, &mut self.ram);
            v.field(FieldMeta::shadow(Category::Ctrl, StorageKind::Ram), 20, &mut self.shadow);
        }
    }

    fn toy() -> Toy {
        Toy { pc: 0x1000, data: 0xdead, valid: true, ram: vec![1, 2, 3, 4], shadow: 7 }
    }

    #[test]
    fn census_counts_by_category_and_kind() {
        let mut t = toy();
        let mut c = Census::new();
        t.visit_state(&mut c);
        assert_eq!(c.bits(Category::Pc, StorageKind::Latch), 62);
        assert_eq!(c.bits(Category::Data, StorageKind::Latch), 64);
        assert_eq!(c.bits(Category::Valid, StorageKind::Latch), 1);
        assert_eq!(c.bits(Category::Regfile, StorageKind::Ram), 28);
        assert_eq!(c.latch_total(), 127);
        assert_eq!(c.ram_total(), 28);
        assert_eq!(c.total(), 155);
        assert_eq!(c.shadow_total(), 20);
        assert!(c.to_table().contains("regfile"));
    }

    #[test]
    fn bit_count_respects_mask() {
        let mut t = toy();
        let mut all = BitCount::new(InjectionMask::LatchesAndRams);
        t.visit_state(&mut all);
        assert_eq!(all.count, 155);
        let mut latches = BitCount::new(InjectionMask::LatchesOnly);
        t.visit_state(&mut latches);
        assert_eq!(latches.count, 127);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        for target in [0u64, 61, 62, 125, 126, 127, 130, 154] {
            let mut a = toy();
            let before = fingerprint_of(&mut a);
            let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, target);
            a.visit_state(&mut flip);
            let hit = flip.flipped.expect("target in range");
            assert!(hit.bit < hit.width);
            let after = fingerprint_of(&mut a);
            assert_ne!(before, after, "target {target} must change the fingerprint");
            // Flip again: must restore the original state exactly.
            let mut flip2 = FlipBit::new(InjectionMask::LatchesAndRams, target);
            a.visit_state(&mut flip2);
            assert_eq!(fingerprint_of(&mut a), before);
        }
    }

    #[test]
    fn flip_bit_categories() {
        let mut t = toy();
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 0);
        t.visit_state(&mut flip);
        let hit = flip.flipped.unwrap();
        assert_eq!(hit.category, Category::Pc);
        assert_eq!(hit.unit, None, "toy declares no units");
        let mut t = toy();
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 127 + 10);
        t.visit_state(&mut flip);
        let hit = flip.flipped.unwrap();
        assert_eq!(hit.category, Category::Regfile);
        assert_eq!(hit.kind, StorageKind::Ram);
    }

    #[test]
    fn flip_bit_never_touches_shadow_state() {
        let mut t = toy();
        // Target past the end of eligible bits: nothing flips.
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 155);
        t.visit_state(&mut flip);
        assert!(flip.flipped.is_none());
        assert_eq!(t.shadow, 7);
    }

    #[test]
    fn latch_only_mask_skips_ram() {
        let mut t = toy();
        // Bit 127 in latch-only order is the first RAM bit in l+r order and
        // must not exist under the latch mask.
        let mut flip = FlipBit::new(InjectionMask::LatchesOnly, 127);
        t.visit_state(&mut flip);
        assert!(flip.flipped.is_none());
        assert_eq!(t.ram, vec![1, 2, 3, 4]);
    }

    #[test]
    fn fingerprint_covers_shadow_state() {
        let mut a = toy();
        let mut b = toy();
        assert_eq!(fingerprint_of(&mut a), fingerprint_of(&mut b));
        b.shadow ^= 1;
        assert_ne!(fingerprint_of(&mut a), fingerprint_of(&mut b));
    }

    #[test]
    fn pc_visit_preserves_alignment() {
        let mut t = toy();
        t.pc = 0xabcd0;
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 3);
        t.visit_state(&mut flip);
        assert_eq!(t.pc % 4, 0, "pc must stay 4-byte aligned (62-bit field)");
        assert_eq!(t.pc, 0xabcd0 ^ (1 << 5));
    }

    /// A machine with two fingerprint units (one stamped by `hot_gen`, one
    /// by `cold_gen`) plus one stray field outside any unit.
    struct UnitToy {
        stray: u64,
        hot: u64,
        hot_gen: u64,
        cold: Vec<u64>,
        cold_gen: u64,
    }

    impl UnitToy {
        fn new() -> UnitToy {
            UnitToy { stray: 0x5a, hot: 0xdead_beef, hot_gen: 0, cold: vec![1, 2, 3], cold_gen: 0 }
        }

        fn set_cold(&mut self, i: usize, val: u64) {
            if self.cold[i] != val {
                self.cold[i] = val;
                self.cold_gen += 1;
            }
        }
    }

    impl VisitState for UnitToy {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            v.field(FieldMeta::new(Category::Ctrl, StorageKind::Latch), 8, &mut self.stray);
            if v.enter_unit(UnitId::Front, self.hot_gen) {
                v.field(FieldMeta::new(Category::Data, StorageKind::Latch), 64, &mut self.hot);
                v.exit_unit(UnitId::Front);
            }
            if v.enter_unit(UnitId::Bpred, self.cold_gen) {
                v.array(FieldMeta::shadow(Category::Ctrl, StorageKind::Ram), 2, &mut self.cold);
                v.exit_unit(UnitId::Bpred);
            }
        }
    }

    #[test]
    fn unit_index_matches_all_order() {
        for (i, u) in UnitId::ALL.iter().enumerate() {
            assert_eq!(u.index(), i, "{u} out of place in UnitId::ALL");
        }
        assert_eq!(UnitId::COUNT, UnitId::ALL.len());
    }

    #[test]
    fn every_registered_unit_declares_a_loggability() {
        // The match in `loggability` is exhaustive, so this pins the
        // *assignments* (a new unit must be placed deliberately, and moving
        // a unit between tiers is a visible diff here, not a silent
        // degradation to no-prune).
        use Loggability::*;
        let mut tallies = std::collections::BTreeMap::new();
        for u in UnitId::ALL {
            let tier = u.loggability();
            *tallies.entry(format!("{tier:?}")).or_insert(0u32) += 1;
            match u {
                UnitId::Lsq | UnitId::Regfile | UnitId::ArchCtrl => assert_eq!(tier, Core, "{u}"),
                UnitId::Front | UnitId::Rename | UnitId::Sched | UnitId::Rob | UnitId::Fus => {
                    assert_eq!(tier, Extended, "{u}")
                }
                _ => assert_eq!(tier, Shadow, "{u}"),
            }
        }
        assert_eq!(tallies["Core"], 3);
        assert_eq!(tallies["Extended"], 5);
        assert_eq!(tallies.get("Unlogged"), None);
        assert_eq!(tallies["Shadow"], 6);
    }

    #[test]
    fn default_visitors_ignore_units() {
        // Census, BitCount and FlipBit keep the enter_unit default (visit
        // everything), so unit brackets change neither totals nor bit order.
        let mut t = UnitToy::new();
        let mut c = Census::new();
        t.visit_state(&mut c);
        assert_eq!(c.total(), 8 + 64);
        assert_eq!(c.shadow_total(), 6);

        let before = fingerprint_of(&mut t);
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 8);
        t.visit_state(&mut flip);
        let hit = flip.flipped.unwrap();
        assert_eq!(hit.category, Category::Data);
        assert_eq!(hit.unit, Some(UnitId::Front), "flip attributed to enclosing unit");
        assert_eq!(t.hot, 0xdead_beef ^ 1);
        assert_ne!(fingerprint_of(&mut t), before);

        // A flip landing outside any unit reports no attribution even on a
        // machine that declares units.
        let mut t = UnitToy::new();
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 0);
        t.visit_state(&mut flip);
        assert_eq!(flip.flipped.unwrap().unit, None);
    }

    #[test]
    fn cached_root_equals_flat_root() {
        let mut t = UnitToy::new();
        let mut engine = CachedFingerprint::new();
        assert_eq!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
        // Second walk with nothing changed: both units served from cache.
        assert_eq!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
        assert_eq!(engine.hits(), 2);
        assert_eq!(engine.misses(), 2);

        // Mutate through the stamped API: the dirty unit is rehashed, the
        // clean one is not, and the root still matches the flat walk.
        t.set_cold(1, 9);
        assert_eq!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
        assert_eq!(engine.hits(), 3);
        assert_eq!(engine.misses(), 3);

        // Stray (non-unit) fields are hashed on every walk.
        t.stray ^= 0x11;
        assert_eq!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
    }

    #[test]
    fn matches_probes_the_suspect_unit_first() {
        let mut f = Fingerprint::new();
        UnitToy::new().visit_state(&mut f);
        let (root, units) = (f.value(), *f.unit_hashes());

        let mut t = UnitToy::new();
        let mut engine = CachedFingerprint::new();
        assert!(engine.matches(&mut t, root, &units));

        // Diverge the hot unit: the mismatch is found by a full walk and
        // the unit becomes the suspect.
        t.hot ^= 4;
        t.hot_gen += 1;
        assert!(!engine.matches(&mut t, root, &units));
        assert_eq!(engine.suspect(), Some(UnitId::Front));

        // While the divergence persists, checks only probe the suspect —
        // here its generation is unchanged since the last walk, so the
        // probe is a single cache hit and nothing is rehashed.
        let (hits, misses) = (engine.hits(), engine.misses());
        assert!(!engine.matches(&mut t, root, &units));
        assert_eq!((engine.hits(), engine.misses()), (hits + 1, misses));

        // Heal the divergence: the probe passes and the authoritative full
        // walk confirms equality.
        t.hot ^= 4;
        t.hot_gen += 1;
        assert!(engine.matches(&mut t, root, &units));
        assert_eq!(engine.suspect(), None, "suspect cleared once healed");

        // A stray-field divergence has no mismatching unit; every check
        // falls through to the root fold and still reports it.
        t.stray ^= 1;
        assert!(!engine.matches(&mut t, root, &units));
        assert_eq!(engine.suspect(), None, "stray divergence has no unit");
        assert!(!engine.matches(&mut t, root, &units));
        t.stray ^= 1;
        assert!(engine.matches(&mut t, root, &units));
    }

    #[test]
    fn unit_hashes_localize_a_difference() {
        let mut a = UnitToy::new();
        let mut b = UnitToy::new();
        b.set_cold(0, 8);
        let mut fa = Fingerprint::new();
        a.visit_state(&mut fa);
        let mut fb = Fingerprint::new();
        b.visit_state(&mut fb);
        assert_ne!(fa.value(), fb.value());
        assert_eq!(fa.unit(UnitId::Front), fb.unit(UnitId::Front));
        assert_ne!(fa.unit(UnitId::Bpred), fb.unit(UnitId::Bpred));
        assert_eq!(fa.unit(UnitId::Dcache), 0, "unvisited units stay zero");
        assert_eq!(fa.unit_hashes()[UnitId::Front.index()], fa.unit(UnitId::Front));
    }

    #[test]
    fn cached_engine_agrees_with_flat_on_unit_hashes() {
        let mut t = UnitToy::new();
        let mut flat = Fingerprint::new();
        t.visit_state(&mut flat);
        let mut engine = CachedFingerprint::new();
        engine.fingerprint(&mut t);
        engine.fingerprint(&mut t); // second walk: both units from cache
        assert_eq!(engine.unit_hashes(), flat.unit_hashes());
        assert_eq!(engine.unit(UnitId::Front), flat.unit(UnitId::Front));
    }

    #[test]
    fn invalidate_recovers_from_out_of_band_mutation() {
        let mut t = UnitToy::new();
        let mut engine = CachedFingerprint::new();
        engine.fingerprint(&mut t);
        // Mutate a unit WITHOUT advancing its stamp: the cache is now stale
        // and the root is wrong — exactly what the contract forbids.
        t.cold[2] ^= 1;
        assert_ne!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
        // invalidate() drops the cache and the next walk is correct again.
        engine.invalidate();
        assert_eq!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
    }

    #[test]
    fn unitless_machines_hash_flat() {
        // A machine with no units hashes exactly as the historical flat FNV
        // chain; the cached engine degenerates to the same thing.
        let mut t = toy();
        let mut engine = CachedFingerprint::new();
        assert_eq!(engine.fingerprint(&mut t), fingerprint_of(&mut t));
        assert_eq!(engine.hits() + engine.misses(), 0);
    }

    #[test]
    fn eligibility_rules() {
        let latch = FieldMeta::new(Category::Data, StorageKind::Latch);
        let ram = FieldMeta::new(Category::Data, StorageKind::Ram);
        let shadow = FieldMeta::shadow(Category::Ctrl, StorageKind::Ram);
        assert!(InjectionMask::LatchesAndRams.eligible(latch));
        assert!(InjectionMask::LatchesAndRams.eligible(ram));
        assert!(!InjectionMask::LatchesAndRams.eligible(shadow));
        assert!(InjectionMask::LatchesOnly.eligible(latch));
        assert!(!InjectionMask::LatchesOnly.eligible(ram));
    }
}

/// A captured copy of every visited field's bits, in visit order.
///
/// Two snapshots of machines with identical structure can be
/// [diffed](Snapshot::diff) to locate exactly which fields differ — the
/// debugging companion to the pass/fail answer a [`Fingerprint`] gives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    fields: Vec<(FieldMeta, u32, u64)>,
}

impl Snapshot {
    /// Captures a snapshot of `machine`.
    pub fn capture(machine: &mut dyn VisitState) -> Snapshot {
        struct Collector {
            fields: Vec<(FieldMeta, u32, u64)>,
        }
        impl StateVisitor for Collector {
            fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64) {
                self.fields.push((meta, width, *bits));
            }
        }
        let mut c = Collector { fields: Vec::new() };
        machine.visit_state(&mut c);
        Snapshot { fields: c.fields }
    }

    /// Number of fields captured.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Compares two snapshots field by field.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different structure (they must come
    /// from machines with identical configuration).
    pub fn diff(&self, other: &Snapshot) -> Vec<FieldDiff> {
        assert_eq!(self.fields.len(), other.fields.len(), "snapshot structure mismatch");
        let mut out = Vec::new();
        for (i, ((meta, width, a), (_, _, b))) in
            self.fields.iter().zip(other.fields.iter()).enumerate()
        {
            if a != b {
                out.push(FieldDiff {
                    index: i,
                    category: meta.category,
                    kind: meta.kind,
                    width: *width,
                    left: *a,
                    right: *b,
                });
            }
        }
        out
    }
}

/// One differing field reported by [`Snapshot::diff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDiff {
    /// Position in visit order.
    pub index: usize,
    /// Category of the field.
    pub category: Category,
    /// Storage kind.
    pub kind: StorageKind,
    /// Field width in bits.
    pub width: u32,
    /// Bits in the first snapshot.
    pub left: u64,
    /// Bits in the second snapshot.
    pub right: u64,
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    struct Pair {
        a: u64,
        b: Vec<u64>,
    }
    impl VisitState for Pair {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            v.field(FieldMeta::new(Category::Data, StorageKind::Latch), 16, &mut self.a);
            v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 8, &mut self.b);
        }
    }

    #[test]
    fn identical_machines_have_empty_diff() {
        let mut x = Pair { a: 5, b: vec![1, 2, 3] };
        let mut y = Pair { a: 5, b: vec![1, 2, 3] };
        let sx = Snapshot::capture(&mut x);
        let sy = Snapshot::capture(&mut y);
        assert!(sx.diff(&sy).is_empty());
        assert_eq!(sx.len(), 4);
        assert!(!sx.is_empty());
    }

    #[test]
    fn diff_locates_the_changed_field() {
        let mut x = Pair { a: 5, b: vec![1, 2, 3] };
        let mut y = Pair { a: 5, b: vec![1, 9, 3] };
        let d = Snapshot::capture(&mut x).diff(&Snapshot::capture(&mut y));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].category, Category::Regfile);
        assert_eq!(d[0].kind, StorageKind::Ram);
        assert_eq!((d[0].left, d[0].right), (2, 9));
        assert_eq!(d[0].index, 2);
    }

    #[test]
    #[should_panic(expected = "structure mismatch")]
    fn structural_mismatch_panics() {
        let mut x = Pair { a: 5, b: vec![1, 2, 3] };
        let mut y = Pair { a: 5, b: vec![1, 2] };
        let _ = Snapshot::capture(&mut x).diff(&Snapshot::capture(&mut y));
    }

    #[test]
    fn snapshot_agrees_with_fingerprint() {
        let mut x = Pair { a: 7, b: vec![4, 5, 6] };
        let mut y = Pair { a: 7, b: vec![4, 5, 6] };
        assert_eq!(fingerprint_of(&mut x), fingerprint_of(&mut y));
        y.b[0] ^= 1;
        assert_ne!(fingerprint_of(&mut x), fingerprint_of(&mut y));
        assert_eq!(Snapshot::capture(&mut x).diff(&Snapshot::capture(&mut y)).len(), 1);
    }
}
