#![warn(missing_docs)]

//! # tfsim-bitstate — the bit-level state registry
//!
//! The paper's experiments require a *latch-accurate* model: every state
//! element (latch bit or RAM cell) present in the implementation must be
//! enumerable, categorized by logical function and storage kind, and
//! individually flippable, and the entire machine state must be comparable
//! against a golden run.
//!
//! This crate provides that machinery without dictating how the pipeline
//! stores its state: pipeline structures keep ordinary Rust fields and
//! implement [`VisitState`], walking each field through a [`StateVisitor`]
//! with its [`FieldMeta`] (category, storage kind, injectability). Four
//! visitors implement the experiments:
//!
//! * [`Census`] — Table 1: bits of latches and RAMs per category.
//! * [`BitCount`] — the eligible-bit total under an [`InjectionMask`].
//! * [`FlipBit`] — flips the *k*-th eligible bit and reports what it hit.
//! * [`Fingerprint`] — a 128-bit hash of every bit of machine state, used
//!   for the µArch Match comparison against the golden run.
//!
//! Cache and predictor arrays are *fingerprinted but not injectable*
//! (`injectable = false`), matching the paper's exclusion of easily
//! protected or correctness-neutral RAM arrays from the campaigns.
//!
//! ```
//! use tfsim_bitstate::{Category, Census, FieldMeta, StateVisitor, StorageKind, VisitState};
//!
//! struct Stage { pc: u64, valid: bool }
//! impl VisitState for Stage {
//!     fn visit_state(&mut self, v: &mut dyn StateVisitor) {
//!         tfsim_bitstate::visit_pc(v, StorageKind::Latch, &mut self.pc);
//!         tfsim_bitstate::visit_bool(
//!             v,
//!             FieldMeta::new(Category::Valid, StorageKind::Latch),
//!             &mut self.valid,
//!         );
//!     }
//! }
//!
//! let mut stage = Stage { pc: 0x1000, valid: true };
//! let mut census = Census::new();
//! stage.visit_state(&mut census);
//! assert_eq!(census.bits(Category::Pc, StorageKind::Latch), 62);
//! assert_eq!(census.bits(Category::Valid, StorageKind::Latch), 1);
//! ```

use std::fmt;

/// Logical function of a bit of state — the categories of the paper's
/// Table 1, plus the two categories introduced by the protection hardware
/// (`Ecc`, `Parity`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Category {
    /// 64-bit address fields for memory operations.
    Addr,
    /// Architectural register free list.
    ArchFreelist,
    /// Architectural register alias table.
    ArchRat,
    /// Miscellaneous control state (decoded control words, state machines).
    Ctrl,
    /// Instruction input and output operands.
    Data,
    /// Parts of the instruction word carried with each instruction.
    Insn,
    /// Program counter fields (62 bits: byte address without the aligned
    /// low two bits).
    Pc,
    /// Control state associated with queues (head/tail pointers, counts).
    Qctrl,
    /// Register file entries and scoreboard bits.
    Regfile,
    /// Physical register file pointers (7 bits for 80 registers).
    Regptr,
    /// Reorder buffer tags (6 bits for 64 entries).
    Robptr,
    /// Speculative register free list.
    SpecFreelist,
    /// Speculative register alias table.
    SpecRat,
    /// Valid bits throughout the pipeline.
    Valid,
    /// ECC check bits added by the protection mechanisms.
    Ecc,
    /// Parity bits added by the protection mechanisms.
    Parity,
}

impl Category {
    /// The fourteen baseline categories of Table 1 (paper order).
    pub const BASELINE: [Category; 14] = [
        Category::Addr,
        Category::ArchFreelist,
        Category::ArchRat,
        Category::Ctrl,
        Category::Data,
        Category::Insn,
        Category::Pc,
        Category::Qctrl,
        Category::Regfile,
        Category::Regptr,
        Category::Robptr,
        Category::SpecFreelist,
        Category::SpecRat,
        Category::Valid,
    ];

    /// All categories including the protection-introduced ones.
    pub const ALL: [Category; 16] = [
        Category::Addr,
        Category::ArchFreelist,
        Category::ArchRat,
        Category::Ctrl,
        Category::Data,
        Category::Insn,
        Category::Pc,
        Category::Qctrl,
        Category::Regfile,
        Category::Regptr,
        Category::Robptr,
        Category::SpecFreelist,
        Category::SpecRat,
        Category::Valid,
        Category::Ecc,
        Category::Parity,
    ];

    /// The lowercase label used in the paper's tables and figures.
    pub fn label(self) -> &'static str {
        match self {
            Category::Addr => "addr",
            Category::ArchFreelist => "archfreelist",
            Category::ArchRat => "archrat",
            Category::Ctrl => "ctrl",
            Category::Data => "data",
            Category::Insn => "insn",
            Category::Pc => "pc",
            Category::Qctrl => "qctrl",
            Category::Regfile => "regfile",
            Category::Regptr => "regptr",
            Category::Robptr => "robptr",
            Category::SpecFreelist => "specfreelist",
            Category::SpecRat => "specrat",
            Category::Valid => "valid",
            Category::Ecc => "ecc",
            Category::Parity => "parity",
        }
    }

    fn index(self) -> usize {
        Category::ALL.iter().position(|c| *c == self).expect("category in ALL")
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Whether a state element is implemented as an edge-triggered latch or as
/// a cell in a RAM array. The paper runs separate campaigns for
/// latches-only and latches+RAMs because the two have different raw fault
/// rates and protection options.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StorageKind {
    /// Pipeline latch (edge-triggered flip-flop).
    Latch,
    /// RAM array cell.
    Ram,
}

/// Metadata attached to every visited field.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldMeta {
    /// Logical function.
    pub category: Category,
    /// Storage implementation.
    pub kind: StorageKind,
    /// Whether fault-injection campaigns may target this field. Cache and
    /// predictor arrays are fingerprinted but not injectable.
    pub injectable: bool,
}

impl FieldMeta {
    /// Injectable state with the given category and kind.
    pub fn new(category: Category, kind: StorageKind) -> FieldMeta {
        FieldMeta { category, kind, injectable: true }
    }

    /// Fingerprint-only state (cache/predictor arrays): never injected.
    pub fn shadow(category: Category, kind: StorageKind) -> FieldMeta {
        FieldMeta { category, kind, injectable: false }
    }
}

/// A visitor over every bit of machine state.
///
/// Implementations receive each field exactly once per walk, in a fixed
/// deterministic order. Fields are at most 64 bits wide; wider structures
/// are visited as arrays.
pub trait StateVisitor {
    /// Visits one field of `width` bits (1 ≤ width ≤ 64) stored in the low
    /// bits of `bits`. The visitor may mutate the value (fault injection).
    fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64);

    /// Visits a RAM array of equally sized entries. The default forwards to
    /// [`StateVisitor::field`] per entry; fingerprinting overrides this for
    /// speed.
    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        for e in entries.iter_mut() {
            self.field(meta, entry_width, e);
        }
    }
}

/// A structure exposing its state bits to visitors.
pub trait VisitState {
    /// Walks every state bit in a fixed deterministic order.
    fn visit_state(&mut self, v: &mut dyn StateVisitor);
}

/// Visits a `bool` as a 1-bit field.
pub fn visit_bool(v: &mut dyn StateVisitor, meta: FieldMeta, b: &mut bool) {
    let mut bits = *b as u64;
    v.field(meta, 1, &mut bits);
    *b = bits & 1 != 0;
}

/// Visits a program counter stored as a byte address whose low two bits are
/// architecturally zero: exposes bits 63..2 as a 62-bit `pc` field, the
/// paper's PC representation.
pub fn visit_pc(v: &mut dyn StateVisitor, kind: StorageKind, pc: &mut u64) {
    let mut bits = *pc >> 2;
    v.field(FieldMeta::new(Category::Pc, kind), 62, &mut bits);
    *pc = bits << 2;
}

fn width_mask(width: u32) -> u64 {
    if width >= 64 {
        u64::MAX
    } else {
        (1u64 << width) - 1
    }
}

/// Which bits a fault-injection campaign may target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InjectionMask {
    /// All injectable latches and RAM cells (the paper's `l+r` campaigns).
    LatchesAndRams,
    /// Injectable latches only (the paper's `l` campaigns).
    LatchesOnly,
}

impl InjectionMask {
    /// Whether a field with `meta` is eligible under this mask.
    pub fn eligible(self, meta: FieldMeta) -> bool {
        meta.injectable
            && match self {
                InjectionMask::LatchesAndRams => true,
                InjectionMask::LatchesOnly => meta.kind == StorageKind::Latch,
            }
    }
}

/// Counts state bits per `(category, kind)` — Table 1.
#[derive(Debug, Clone, Default)]
pub struct Census {
    counts: [[u64; 2]; Category::ALL.len()],
    shadow_bits: u64,
}

impl Census {
    /// Creates an empty census.
    pub fn new() -> Census {
        Census::default()
    }

    /// Injectable bits recorded for a category/kind pair.
    pub fn bits(&self, category: Category, kind: StorageKind) -> u64 {
        self.counts[category.index()][kind as usize]
    }

    /// Total injectable latch bits.
    pub fn latch_total(&self) -> u64 {
        Category::ALL.iter().map(|c| self.bits(*c, StorageKind::Latch)).sum()
    }

    /// Total injectable RAM bits.
    pub fn ram_total(&self) -> u64 {
        Category::ALL.iter().map(|c| self.bits(*c, StorageKind::Ram)).sum()
    }

    /// All injectable bits.
    pub fn total(&self) -> u64 {
        self.latch_total() + self.ram_total()
    }

    /// Bits visited but excluded from injection (cache/predictor state).
    pub fn shadow_total(&self) -> u64 {
        self.shadow_bits
    }

    /// Renders the census as a Table 1-style fixed-width table.
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{:<14} {:>12} {:>12}\n",
            "category", "latch bits", "ram bits"
        ));
        for c in Category::ALL {
            let l = self.bits(c, StorageKind::Latch);
            let r = self.bits(c, StorageKind::Ram);
            if l == 0 && r == 0 {
                continue;
            }
            out.push_str(&format!("{:<14} {:>12} {:>12}\n", c.label(), l, r));
        }
        out.push_str(&format!(
            "{:<14} {:>12} {:>12}\n",
            "total",
            self.latch_total(),
            self.ram_total()
        ));
        out
    }
}

impl StateVisitor for Census {
    fn field(&mut self, meta: FieldMeta, width: u32, _bits: &mut u64) {
        debug_assert!((1..=64).contains(&width));
        if meta.injectable {
            self.counts[meta.category.index()][meta.kind as usize] += width as u64;
        } else {
            self.shadow_bits += width as u64;
        }
    }

    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        let bits = entry_width as u64 * entries.len() as u64;
        if meta.injectable {
            self.counts[meta.category.index()][meta.kind as usize] += bits;
        } else {
            self.shadow_bits += bits;
        }
    }
}

/// Counts the eligible bits under an [`InjectionMask`]; the fault selector
/// draws a uniform index in `[0, count)`.
#[derive(Debug, Clone, Copy)]
pub struct BitCount {
    mask: InjectionMask,
    /// Number of eligible bits visited.
    pub count: u64,
}

impl BitCount {
    /// Creates a counter for `mask`.
    pub fn new(mask: InjectionMask) -> BitCount {
        BitCount { mask, count: 0 }
    }
}

impl StateVisitor for BitCount {
    fn field(&mut self, meta: FieldMeta, width: u32, _bits: &mut u64) {
        if self.mask.eligible(meta) {
            self.count += width as u64;
        }
    }

    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        if self.mask.eligible(meta) {
            self.count += entry_width as u64 * entries.len() as u64;
        }
    }
}

/// Description of the bit a [`FlipBit`] visitor flipped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlippedBit {
    /// Category of the containing field.
    pub category: Category,
    /// Storage kind of the containing field.
    pub kind: StorageKind,
    /// Bit offset within the field.
    pub bit: u32,
    /// Field width.
    pub width: u32,
}

/// Flips the `target`-th eligible bit (in visit order) under a mask.
#[derive(Debug, Clone, Copy)]
pub struct FlipBit {
    mask: InjectionMask,
    target: u64,
    pos: u64,
    /// Set once the target bit has been flipped.
    pub flipped: Option<FlippedBit>,
}

impl FlipBit {
    /// Creates a visitor that will flip eligible bit number `target`.
    pub fn new(mask: InjectionMask, target: u64) -> FlipBit {
        FlipBit { mask, target, pos: 0, flipped: None }
    }
}

impl StateVisitor for FlipBit {
    fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64) {
        if self.flipped.is_some() || !self.mask.eligible(meta) {
            return;
        }
        let w = width as u64;
        if self.target < self.pos + w {
            let bit = (self.target - self.pos) as u32;
            *bits ^= 1u64 << bit;
            *bits &= width_mask(width);
            self.flipped = Some(FlippedBit { category: meta.category, kind: meta.kind, bit, width });
        }
        self.pos += w;
    }

    fn array(&mut self, meta: FieldMeta, entry_width: u32, entries: &mut [u64]) {
        if self.flipped.is_some() || !self.mask.eligible(meta) {
            return;
        }
        let total = entry_width as u64 * entries.len() as u64;
        if self.target < self.pos + total {
            let offset = self.target - self.pos;
            let entry = (offset / entry_width as u64) as usize;
            let bit = (offset % entry_width as u64) as u32;
            entries[entry] ^= 1u64 << bit;
            entries[entry] &= width_mask(entry_width);
            self.flipped = Some(FlippedBit {
                category: meta.category,
                kind: meta.kind,
                bit,
                width: entry_width,
            });
        }
        self.pos += total;
    }
}

/// 128-bit FNV-1a style fingerprint over every visited bit (including
/// non-injectable shadow state). Two machines with equal fingerprints are
/// treated as microarchitecturally identical.
#[derive(Debug, Clone, Copy)]
pub struct Fingerprint {
    h: u128,
}

const FNV128_OFFSET: u128 = 0x6c62_272e_07bb_0142_62b8_2175_6295_c58d;
const FNV128_PRIME: u128 = 0x0000_0000_0100_0000_0000_0000_0000_013b;

impl Fingerprint {
    /// Creates a fresh fingerprint accumulator.
    pub fn new() -> Fingerprint {
        Fingerprint { h: FNV128_OFFSET }
    }

    /// The accumulated 128-bit hash.
    pub fn value(&self) -> u128 {
        self.h
    }

    fn mix(&mut self, word: u64) {
        self.h ^= word as u128;
        self.h = self.h.wrapping_mul(FNV128_PRIME);
    }
}

impl Default for Fingerprint {
    fn default() -> Self {
        Fingerprint::new()
    }
}

impl StateVisitor for Fingerprint {
    fn field(&mut self, _meta: FieldMeta, width: u32, bits: &mut u64) {
        debug_assert_eq!(*bits & !width_mask(width), 0, "field exceeds declared width {width}");
        self.mix(*bits);
    }

    fn array(&mut self, _meta: FieldMeta, _entry_width: u32, entries: &mut [u64]) {
        for e in entries.iter() {
            self.mix(*e);
        }
    }
}

/// Computes the fingerprint of a [`VisitState`] machine.
pub fn fingerprint_of(machine: &mut dyn VisitState) -> u128 {
    let mut fp = Fingerprint::new();
    machine.visit_state(&mut fp);
    fp.value()
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Toy {
        pc: u64,
        data: u64,
        valid: bool,
        ram: Vec<u64>,
        shadow: u64,
    }

    impl VisitState for Toy {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            visit_pc(v, StorageKind::Latch, &mut self.pc);
            v.field(FieldMeta::new(Category::Data, StorageKind::Latch), 64, &mut self.data);
            visit_bool(v, FieldMeta::new(Category::Valid, StorageKind::Latch), &mut self.valid);
            v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 7, &mut self.ram);
            v.field(FieldMeta::shadow(Category::Ctrl, StorageKind::Ram), 20, &mut self.shadow);
        }
    }

    fn toy() -> Toy {
        Toy { pc: 0x1000, data: 0xdead, valid: true, ram: vec![1, 2, 3, 4], shadow: 7 }
    }

    #[test]
    fn census_counts_by_category_and_kind() {
        let mut t = toy();
        let mut c = Census::new();
        t.visit_state(&mut c);
        assert_eq!(c.bits(Category::Pc, StorageKind::Latch), 62);
        assert_eq!(c.bits(Category::Data, StorageKind::Latch), 64);
        assert_eq!(c.bits(Category::Valid, StorageKind::Latch), 1);
        assert_eq!(c.bits(Category::Regfile, StorageKind::Ram), 28);
        assert_eq!(c.latch_total(), 127);
        assert_eq!(c.ram_total(), 28);
        assert_eq!(c.total(), 155);
        assert_eq!(c.shadow_total(), 20);
        assert!(c.to_table().contains("regfile"));
    }

    #[test]
    fn bit_count_respects_mask() {
        let mut t = toy();
        let mut all = BitCount::new(InjectionMask::LatchesAndRams);
        t.visit_state(&mut all);
        assert_eq!(all.count, 155);
        let mut latches = BitCount::new(InjectionMask::LatchesOnly);
        t.visit_state(&mut latches);
        assert_eq!(latches.count, 127);
    }

    #[test]
    fn flip_bit_changes_exactly_one_bit() {
        for target in [0u64, 61, 62, 125, 126, 127, 130, 154] {
            let mut a = toy();
            let before = fingerprint_of(&mut a);
            let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, target);
            a.visit_state(&mut flip);
            let hit = flip.flipped.expect("target in range");
            assert!(hit.bit < hit.width);
            let after = fingerprint_of(&mut a);
            assert_ne!(before, after, "target {target} must change the fingerprint");
            // Flip again: must restore the original state exactly.
            let mut flip2 = FlipBit::new(InjectionMask::LatchesAndRams, target);
            a.visit_state(&mut flip2);
            assert_eq!(fingerprint_of(&mut a), before);
        }
    }

    #[test]
    fn flip_bit_categories() {
        let mut t = toy();
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 0);
        t.visit_state(&mut flip);
        assert_eq!(flip.flipped.unwrap().category, Category::Pc);
        let mut t = toy();
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 127 + 10);
        t.visit_state(&mut flip);
        let hit = flip.flipped.unwrap();
        assert_eq!(hit.category, Category::Regfile);
        assert_eq!(hit.kind, StorageKind::Ram);
    }

    #[test]
    fn flip_bit_never_touches_shadow_state() {
        let mut t = toy();
        // Target past the end of eligible bits: nothing flips.
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 155);
        t.visit_state(&mut flip);
        assert!(flip.flipped.is_none());
        assert_eq!(t.shadow, 7);
    }

    #[test]
    fn latch_only_mask_skips_ram() {
        let mut t = toy();
        // Bit 127 in latch-only order is the first RAM bit in l+r order and
        // must not exist under the latch mask.
        let mut flip = FlipBit::new(InjectionMask::LatchesOnly, 127);
        t.visit_state(&mut flip);
        assert!(flip.flipped.is_none());
        assert_eq!(t.ram, vec![1, 2, 3, 4]);
    }

    #[test]
    fn fingerprint_covers_shadow_state() {
        let mut a = toy();
        let mut b = toy();
        assert_eq!(fingerprint_of(&mut a), fingerprint_of(&mut b));
        b.shadow ^= 1;
        assert_ne!(fingerprint_of(&mut a), fingerprint_of(&mut b));
    }

    #[test]
    fn pc_visit_preserves_alignment() {
        let mut t = toy();
        t.pc = 0xabcd0;
        let mut flip = FlipBit::new(InjectionMask::LatchesAndRams, 3);
        t.visit_state(&mut flip);
        assert_eq!(t.pc % 4, 0, "pc must stay 4-byte aligned (62-bit field)");
        assert_eq!(t.pc, 0xabcd0 ^ (1 << 5));
    }

    #[test]
    fn eligibility_rules() {
        let latch = FieldMeta::new(Category::Data, StorageKind::Latch);
        let ram = FieldMeta::new(Category::Data, StorageKind::Ram);
        let shadow = FieldMeta::shadow(Category::Ctrl, StorageKind::Ram);
        assert!(InjectionMask::LatchesAndRams.eligible(latch));
        assert!(InjectionMask::LatchesAndRams.eligible(ram));
        assert!(!InjectionMask::LatchesAndRams.eligible(shadow));
        assert!(InjectionMask::LatchesOnly.eligible(latch));
        assert!(!InjectionMask::LatchesOnly.eligible(ram));
    }
}

/// A captured copy of every visited field's bits, in visit order.
///
/// Two snapshots of machines with identical structure can be
/// [diffed](Snapshot::diff) to locate exactly which fields differ — the
/// debugging companion to the pass/fail answer a [`Fingerprint`] gives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    fields: Vec<(FieldMeta, u32, u64)>,
}

impl Snapshot {
    /// Captures a snapshot of `machine`.
    pub fn capture(machine: &mut dyn VisitState) -> Snapshot {
        struct Collector {
            fields: Vec<(FieldMeta, u32, u64)>,
        }
        impl StateVisitor for Collector {
            fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64) {
                self.fields.push((meta, width, *bits));
            }
        }
        let mut c = Collector { fields: Vec::new() };
        machine.visit_state(&mut c);
        Snapshot { fields: c.fields }
    }

    /// Number of fields captured.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// Whether the snapshot is empty.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// Compares two snapshots field by field.
    ///
    /// # Panics
    ///
    /// Panics if the snapshots have different structure (they must come
    /// from machines with identical configuration).
    pub fn diff(&self, other: &Snapshot) -> Vec<FieldDiff> {
        assert_eq!(self.fields.len(), other.fields.len(), "snapshot structure mismatch");
        let mut out = Vec::new();
        for (i, ((meta, width, a), (_, _, b))) in
            self.fields.iter().zip(other.fields.iter()).enumerate()
        {
            if a != b {
                out.push(FieldDiff {
                    index: i,
                    category: meta.category,
                    kind: meta.kind,
                    width: *width,
                    left: *a,
                    right: *b,
                });
            }
        }
        out
    }
}

/// One differing field reported by [`Snapshot::diff`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FieldDiff {
    /// Position in visit order.
    pub index: usize,
    /// Category of the field.
    pub category: Category,
    /// Storage kind.
    pub kind: StorageKind,
    /// Field width in bits.
    pub width: u32,
    /// Bits in the first snapshot.
    pub left: u64,
    /// Bits in the second snapshot.
    pub right: u64,
}

#[cfg(test)]
mod snapshot_tests {
    use super::*;

    struct Pair {
        a: u64,
        b: Vec<u64>,
    }
    impl VisitState for Pair {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            v.field(FieldMeta::new(Category::Data, StorageKind::Latch), 16, &mut self.a);
            v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 8, &mut self.b);
        }
    }

    #[test]
    fn identical_machines_have_empty_diff() {
        let mut x = Pair { a: 5, b: vec![1, 2, 3] };
        let mut y = Pair { a: 5, b: vec![1, 2, 3] };
        let sx = Snapshot::capture(&mut x);
        let sy = Snapshot::capture(&mut y);
        assert!(sx.diff(&sy).is_empty());
        assert_eq!(sx.len(), 4);
        assert!(!sx.is_empty());
    }

    #[test]
    fn diff_locates_the_changed_field() {
        let mut x = Pair { a: 5, b: vec![1, 2, 3] };
        let mut y = Pair { a: 5, b: vec![1, 9, 3] };
        let d = Snapshot::capture(&mut x).diff(&Snapshot::capture(&mut y));
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].category, Category::Regfile);
        assert_eq!(d[0].kind, StorageKind::Ram);
        assert_eq!((d[0].left, d[0].right), (2, 9));
        assert_eq!(d[0].index, 2);
    }

    #[test]
    #[should_panic(expected = "structure mismatch")]
    fn structural_mismatch_panics() {
        let mut x = Pair { a: 5, b: vec![1, 2, 3] };
        let mut y = Pair { a: 5, b: vec![1, 2] };
        let _ = Snapshot::capture(&mut x).diff(&Snapshot::capture(&mut y));
    }

    #[test]
    fn snapshot_agrees_with_fingerprint() {
        let mut x = Pair { a: 7, b: vec![4, 5, 6] };
        let mut y = Pair { a: 7, b: vec![4, 5, 6] };
        assert_eq!(fingerprint_of(&mut x), fingerprint_of(&mut y));
        y.b[0] ^= 1;
        assert_ne!(fingerprint_of(&mut x), fingerprint_of(&mut y));
        assert_eq!(Snapshot::capture(&mut x).diff(&Snapshot::capture(&mut y)).len(), 1);
    }
}
