//! Word-parallel (bit-sliced) state: 64 trial lanes per state bit.
//!
//! Classic parallel fault simulation packs one trial per bit position of a
//! machine word: the state of 64 concurrent trials is stored
//! *structure-of-arrays*, one 64-bit word per latch/RAM bit, where lane
//! `k`'s value of that bit is bit `k` of the word. A fault-free lane is a
//! broadcast copy of the golden machine, so all fault-free lanes share one
//! evaluation; a lane whose word diverges from the broadcast peels off to a
//! scalar walker.
//!
//! [`SlicedState`] is the *materialized* form of that layout: it captures a
//! [`VisitState`] machine into transposed words, supports per-lane fault
//! injection with exactly the bit numbering of [`FlipBit`], and can
//! reconstitute any lane back into a scalar machine. The campaign engine
//! (`tfsim-inject`) realizes the same semantics sparsely — it stores only
//! each lane's XOR difference against golden — but this dense container is
//! the reference the differential equivalence suite pins it against.

use crate::{FieldMeta, FlippedBit, StateVisitor, UnitId, VisitState};

/// Layout record for one visited field inside a [`SlicedState`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlicedField {
    /// Field metadata (category, storage kind, injectability).
    pub meta: FieldMeta,
    /// Field width in bits.
    pub width: u32,
    /// Fingerprint unit enclosing the field, if any.
    pub unit: Option<UnitId>,
    /// Index of the field's first bit in the transposed word array.
    base: usize,
}

/// A 64-lane bit-sliced copy of one machine's state.
///
/// Every state bit of the source machine holds a 64-bit word: bit `k` of
/// the word is the value of that state bit in trial lane `k`. Capture
/// broadcasts the golden value to all lanes; [`SlicedState::flip`] then
/// perturbs single lanes with [`FlipBit`]-compatible bit numbering, and
/// [`SlicedState::load_lane`] writes one lane back into a scalar machine.
#[derive(Debug, Clone)]
pub struct SlicedState {
    fields: Vec<SlicedField>,
    /// One word per state bit; lane `k` lives in bit `k`.
    slices: Vec<u64>,
    /// The broadcast words at capture time (all-zeros or all-ones), kept to
    /// detect which lanes have diverged from golden.
    golden: Vec<u64>,
}

/// Number of trial lanes per word.
pub const LANES: usize = 64;

struct Broadcast {
    fields: Vec<SlicedField>,
    slices: Vec<u64>,
    in_unit: Option<UnitId>,
}

impl StateVisitor for Broadcast {
    fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64) {
        self.fields.push(SlicedField {
            meta,
            width,
            unit: self.in_unit,
            base: self.slices.len(),
        });
        for b in 0..width {
            // Broadcast: all 64 lanes agree with golden.
            self.slices.push(if *bits >> b & 1 != 0 { u64::MAX } else { 0 });
        }
    }

    fn enter_unit(&mut self, unit: UnitId, _gen: u64) -> bool {
        self.in_unit = Some(unit);
        true
    }

    fn exit_unit(&mut self, _unit: UnitId) {
        self.in_unit = None;
    }
}

struct LaneLoad<'a> {
    sliced: &'a SlicedState,
    lane: u32,
    idx: usize,
}

impl StateVisitor for LaneLoad<'_> {
    fn field(&mut self, meta: FieldMeta, width: u32, bits: &mut u64) {
        let f = &self.sliced.fields[self.idx];
        assert_eq!(
            (f.meta, f.width),
            (meta, width),
            "machine structure changed since capture (field {})",
            self.idx
        );
        let mut v = 0u64;
        for b in 0..width as usize {
            v |= (self.sliced.slices[f.base + b] >> self.lane & 1) << b;
        }
        *bits = v;
        self.idx += 1;
    }
}

impl SlicedState {
    /// Captures `machine`, broadcasting its state to all 64 lanes.
    pub fn capture(machine: &mut dyn VisitState) -> SlicedState {
        let mut b = Broadcast { fields: Vec::new(), slices: Vec::new(), in_unit: None };
        machine.visit_state(&mut b);
        SlicedState { fields: b.fields, golden: b.slices.clone(), slices: b.slices }
    }

    /// Number of state bits (words in the transposed array).
    pub fn bit_count(&self) -> usize {
        self.slices.len()
    }

    /// The visited fields, in visit order.
    pub fn fields(&self) -> &[SlicedField] {
        &self.fields
    }

    /// Flips eligible bit number `target` (the identical numbering
    /// [`FlipBit`] uses under `mask`) in lane `lane` only, returning the
    /// same [`FlippedBit`] description a scalar flip would. Returns `None`
    /// if `target` is past the last eligible bit.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64`.
    pub fn flip(
        &mut self,
        mask: crate::InjectionMask,
        target: u64,
        lane: u32,
    ) -> Option<FlippedBit> {
        assert!(lane < LANES as u32, "lane {lane} out of range");
        let mut pos = 0u64;
        for f in &self.fields {
            if !mask.eligible(f.meta) {
                continue;
            }
            let w = f.width as u64;
            if target < pos + w {
                let bit = (target - pos) as u32;
                self.slices[f.base + bit as usize] ^= 1u64 << lane;
                return Some(FlippedBit {
                    category: f.meta.category,
                    kind: f.meta.kind,
                    bit,
                    width: f.width,
                    unit: f.unit,
                });
            }
            pos += w;
        }
        None
    }

    /// Writes lane `lane`'s state into `machine`, which must have the same
    /// structure as the captured one.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= 64` or the machine's field sequence differs from
    /// the one captured.
    pub fn load_lane(&self, lane: u32, machine: &mut dyn VisitState) {
        assert!(lane < LANES as u32, "lane {lane} out of range");
        let mut l = LaneLoad { sliced: self, lane, idx: 0 };
        machine.visit_state(&mut l);
        assert_eq!(l.idx, self.fields.len(), "machine visited fewer fields than captured");
    }

    /// Bitmask of lanes whose state differs anywhere from the golden
    /// broadcast (bit `k` set ⇔ lane `k` diverged). This is the peel-off
    /// trigger: a diverged lane leaves word-parallel execution for the
    /// scalar path.
    pub fn divergent_lanes(&self) -> u64 {
        self.slices
            .iter()
            .zip(self.golden.iter())
            .fold(0u64, |acc, (s, g)| acc | (s ^ g))
    }

    /// Verifies this container's bit numbering against a scalar
    /// [`FlipBit`]: flips `target` in a scratch lane and returns the hit
    /// description without mutating any state.
    pub fn probe(&self, mask: crate::InjectionMask, target: u64) -> Option<FlippedBit> {
        let mut probe = self.clone();
        probe.flip(mask, target, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{fingerprint_of, Category, FlipBit, InjectionMask, Snapshot, StorageKind};

    struct Toy {
        pc: u64,
        data: u64,
        valid: bool,
        ram: Vec<u64>,
        shadow: u64,
    }

    impl VisitState for Toy {
        fn visit_state(&mut self, v: &mut dyn StateVisitor) {
            crate::visit_pc(v, StorageKind::Latch, &mut self.pc);
            if v.enter_unit(UnitId::Front, 0) {
                v.field(FieldMeta::new(Category::Data, StorageKind::Latch), 64, &mut self.data);
                crate::visit_bool(
                    v,
                    FieldMeta::new(Category::Valid, StorageKind::Latch),
                    &mut self.valid,
                );
                v.exit_unit(UnitId::Front);
            }
            v.array(FieldMeta::new(Category::Regfile, StorageKind::Ram), 7, &mut self.ram);
            v.field(FieldMeta::shadow(Category::Ctrl, StorageKind::Ram), 20, &mut self.shadow);
        }
    }

    fn toy() -> Toy {
        Toy { pc: 0x1000, data: 0xdead, valid: true, ram: vec![1, 2, 3, 4], shadow: 7 }
    }

    const MASK: InjectionMask = InjectionMask::LatchesAndRams;

    #[test]
    fn broadcast_lanes_equal_golden() {
        let s = SlicedState::capture(&mut toy());
        assert_eq!(s.divergent_lanes(), 0);
        for lane in [0u32, 17, 63] {
            let mut out = toy();
            out.pc = 0;
            out.data = 0;
            out.ram = vec![0; 4];
            s.load_lane(lane, &mut out);
            assert_eq!(fingerprint_of(&mut out), fingerprint_of(&mut toy()));
        }
    }

    #[test]
    fn flip_matches_scalar_flipbit_and_isolates_the_lane() {
        for target in [0u64, 61, 62, 126, 127, 130, 154] {
            let mut s = SlicedState::capture(&mut toy());
            let hit = s.flip(MASK, target, 41).expect("target in range");

            let mut scalar = toy();
            let mut flip = FlipBit::new(MASK, target);
            scalar.visit_state(&mut flip);
            assert_eq!(Some(hit), flip.flipped, "lane flip must report the scalar hit");

            assert_eq!(s.divergent_lanes(), 1u64 << 41, "only the flipped lane diverges");

            // The flipped lane reloads to exactly the scalar-flipped state…
            let mut lane = toy();
            s.load_lane(41, &mut lane);
            let d = Snapshot::capture(&mut lane).diff(&Snapshot::capture(&mut scalar));
            assert!(d.is_empty(), "lane 41 != scalar flip at target {target}: {d:?}");
            // …and every other lane is still golden.
            let mut other = toy();
            s.load_lane(40, &mut other);
            assert_eq!(fingerprint_of(&mut other), fingerprint_of(&mut toy()));
        }
    }

    #[test]
    fn flip_past_eligible_bits_is_none_and_shadow_is_untouchable() {
        let mut s = SlicedState::capture(&mut toy());
        assert!(s.flip(MASK, 155, 0).is_none());
        assert_eq!(s.divergent_lanes(), 0);
        assert!(s.probe(MASK, 154).is_some());
        // Latch-only numbering excludes the RAM bits entirely.
        assert!(s.flip(InjectionMask::LatchesOnly, 127, 0).is_none());
    }

    #[test]
    fn unit_attribution_matches_the_enclosing_bracket() {
        let s = SlicedState::capture(&mut toy());
        let hit = s.probe(MASK, 62).unwrap();
        assert_eq!(hit.unit, Some(UnitId::Front));
        assert_eq!(hit.category, Category::Data);
        let hit = s.probe(MASK, 0).unwrap();
        assert_eq!(hit.unit, None, "pc sits outside any unit");
    }
}
