//! Instruction word decoding and encoding.
//!
//! Real Alpha AXP opcode and function-code assignments are used. Any word
//! outside the implemented subset decodes to [`Mnemonic::Illegal`], which
//! raises an exception when it retires — exactly how bit-flipped
//! instruction words produce the paper's `except` failure mode.

use crate::{Insn, Mnemonic, PalFunc, Reg};

/// Opcode field (bits 31..26).
fn opcode(w: u32) -> u32 {
    w >> 26
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i64 {
    let shift = 64 - bits;
    (((v as u64) << shift) as i64) >> shift
}

/// Decodes a 32-bit instruction word.
///
/// Never fails: unimplemented or malformed words decode to
/// [`Mnemonic::Illegal`] with the raw word preserved, mirroring hardware
/// behaviour where any latched value flows down the pipe and traps at
/// retirement.
///
/// ```
/// use tfsim_isa::{decode, Mnemonic};
/// // ADDQ r1, r2, r3 == opcode 0x10, func 0x20.
/// let word = (0x10 << 26) | (1 << 21) | (2 << 16) | (0x20 << 5) | 3;
/// assert_eq!(decode(word).mnemonic, Mnemonic::Addq);
/// ```
pub fn decode(w: u32) -> Insn {
    let ra = Reg::from_number(((w >> 21) & 31) as u8);
    let rb = Reg::from_number(((w >> 16) & 31) as u8);
    let rc = Reg::from_number((w & 31) as u8);
    let disp16 = sext(w & 0xffff, 16);
    let disp21 = sext(w & 0x1f_ffff, 21);

    let mut insn = Insn {
        mnemonic: Mnemonic::Illegal,
        ra,
        rb,
        rc,
        imm: 0,
        uses_literal: false,
        pal: PalFunc::Halt,
        raw: w,
    };

    match opcode(w) {
        0x00 => {
            insn.mnemonic = Mnemonic::CallPal;
            insn.pal = PalFunc::from_bits(w);
        }
        0x08 => mem(&mut insn, Mnemonic::Lda, disp16),
        0x09 => mem(&mut insn, Mnemonic::Ldah, disp16),
        0x0A => mem(&mut insn, Mnemonic::Ldbu, disp16),
        0x0C => mem(&mut insn, Mnemonic::Ldwu, disp16),
        0x0D => mem(&mut insn, Mnemonic::Stw, disp16),
        0x0E => mem(&mut insn, Mnemonic::Stb, disp16),
        0x28 => mem(&mut insn, Mnemonic::Ldl, disp16),
        0x29 => mem(&mut insn, Mnemonic::Ldq, disp16),
        0x2C => mem(&mut insn, Mnemonic::Stl, disp16),
        0x2D => mem(&mut insn, Mnemonic::Stq, disp16),
        0x10..=0x13 => {
            let func = (w >> 5) & 0x7f;
            if let Some(m) = operate_mnemonic(opcode(w), func) {
                insn.mnemonic = m;
                if w & (1 << 12) != 0 {
                    insn.uses_literal = true;
                    insn.imm = ((w >> 13) & 0xff) as i64;
                }
            }
        }
        0x1A => {
            // JMP group; bits 15..14 select the flavour.
            insn.mnemonic = match (w >> 14) & 3 {
                0 => Mnemonic::Jmp,
                1 => Mnemonic::Jsr,
                2 => Mnemonic::Ret,
                _ => Mnemonic::Jmp, // JSR_COROUTINE treated as JMP
            };
        }
        0x30 => br(&mut insn, Mnemonic::Br, disp21),
        0x34 => br(&mut insn, Mnemonic::Bsr, disp21),
        0x38 => br(&mut insn, Mnemonic::Blbc, disp21),
        0x39 => br(&mut insn, Mnemonic::Beq, disp21),
        0x3A => br(&mut insn, Mnemonic::Blt, disp21),
        0x3B => br(&mut insn, Mnemonic::Ble, disp21),
        0x3C => br(&mut insn, Mnemonic::Blbs, disp21),
        0x3D => br(&mut insn, Mnemonic::Bne, disp21),
        0x3E => br(&mut insn, Mnemonic::Bge, disp21),
        0x3F => br(&mut insn, Mnemonic::Bgt, disp21),
        _ => {}
    }
    insn
}

fn mem(insn: &mut Insn, m: Mnemonic, disp: i64) {
    insn.mnemonic = m;
    insn.imm = disp;
}

fn br(insn: &mut Insn, m: Mnemonic, disp: i64) {
    insn.mnemonic = m;
    insn.imm = disp;
}

fn operate_mnemonic(op: u32, func: u32) -> Option<Mnemonic> {
    use Mnemonic::*;
    Some(match (op, func) {
        (0x10, 0x00) => Addl,
        (0x10, 0x02) => S4addl,
        (0x10, 0x09) => Subl,
        (0x10, 0x0B) => S4subl,
        (0x10, 0x0F) => Cmpbge,
        (0x10, 0x1D) => Cmpult,
        (0x10, 0x20) => Addq,
        (0x10, 0x22) => S4addq,
        (0x10, 0x29) => Subq,
        (0x10, 0x2D) => Cmpeq,
        (0x10, 0x32) => S8addq,
        (0x10, 0x3B) => S8subq,
        (0x10, 0x3D) => Cmpule,
        (0x10, 0x40) => Addlv,
        (0x10, 0x49) => Sublv,
        (0x10, 0x4D) => Cmplt,
        (0x10, 0x60) => Addqv,
        (0x10, 0x69) => Subqv,
        (0x10, 0x6D) => Cmple,
        (0x11, 0x00) => And,
        (0x11, 0x08) => Bic,
        (0x11, 0x14) => Cmovlbs,
        (0x11, 0x16) => Cmovlbc,
        (0x11, 0x20) => Bis,
        (0x11, 0x24) => Cmoveq,
        (0x11, 0x26) => Cmovne,
        (0x11, 0x28) => Ornot,
        (0x11, 0x40) => Xor,
        (0x11, 0x44) => Cmovlt,
        (0x11, 0x46) => Cmovge,
        (0x11, 0x48) => Eqv,
        (0x11, 0x64) => Cmovle,
        (0x11, 0x66) => Cmovgt,
        (0x12, 0x02) => Mskbl,
        (0x12, 0x06) => Extbl,
        (0x12, 0x0B) => Insbl,
        (0x12, 0x12) => Mskwl,
        (0x12, 0x16) => Extwl,
        (0x12, 0x1B) => Inswl,
        (0x12, 0x22) => Mskll,
        (0x12, 0x26) => Extll,
        (0x12, 0x2B) => Insll,
        (0x12, 0x30) => Zap,
        (0x12, 0x31) => Zapnot,
        (0x12, 0x32) => Mskql,
        (0x12, 0x34) => Srl,
        (0x12, 0x36) => Extql,
        (0x12, 0x39) => Sll,
        (0x12, 0x3B) => Insql,
        (0x12, 0x3C) => Sra,
        (0x13, 0x00) => Mull,
        (0x13, 0x20) => Mulq,
        (0x13, 0x30) => Umulh,
        (0x13, 0x40) => Mullv,
        (0x13, 0x60) => Mulqv,
        _ => return None,
    })
}

fn operate_codes(m: Mnemonic) -> Option<(u32, u32)> {
    use Mnemonic::*;
    Some(match m {
        Addl => (0x10, 0x00),
        S4addl => (0x10, 0x02),
        Subl => (0x10, 0x09),
        S4subl => (0x10, 0x0B),
        Cmpbge => (0x10, 0x0F),
        Cmpult => (0x10, 0x1D),
        Addq => (0x10, 0x20),
        S4addq => (0x10, 0x22),
        Subq => (0x10, 0x29),
        Cmpeq => (0x10, 0x2D),
        S8addq => (0x10, 0x32),
        S8subq => (0x10, 0x3B),
        Cmpule => (0x10, 0x3D),
        Addlv => (0x10, 0x40),
        Sublv => (0x10, 0x49),
        Cmplt => (0x10, 0x4D),
        Addqv => (0x10, 0x60),
        Subqv => (0x10, 0x69),
        Cmple => (0x10, 0x6D),
        And => (0x11, 0x00),
        Bic => (0x11, 0x08),
        Cmovlbs => (0x11, 0x14),
        Cmovlbc => (0x11, 0x16),
        Bis => (0x11, 0x20),
        Cmoveq => (0x11, 0x24),
        Cmovne => (0x11, 0x26),
        Ornot => (0x11, 0x28),
        Xor => (0x11, 0x40),
        Cmovlt => (0x11, 0x44),
        Cmovge => (0x11, 0x46),
        Eqv => (0x11, 0x48),
        Cmovle => (0x11, 0x64),
        Cmovgt => (0x11, 0x66),
        Mskbl => (0x12, 0x02),
        Extbl => (0x12, 0x06),
        Insbl => (0x12, 0x0B),
        Mskwl => (0x12, 0x12),
        Extwl => (0x12, 0x16),
        Inswl => (0x12, 0x1B),
        Mskll => (0x12, 0x22),
        Extll => (0x12, 0x26),
        Insll => (0x12, 0x2B),
        Zap => (0x12, 0x30),
        Zapnot => (0x12, 0x31),
        Mskql => (0x12, 0x32),
        Srl => (0x12, 0x34),
        Extql => (0x12, 0x36),
        Sll => (0x12, 0x39),
        Insql => (0x12, 0x3B),
        Sra => (0x12, 0x3C),
        Mull => (0x13, 0x00),
        Mulq => (0x13, 0x20),
        Umulh => (0x13, 0x30),
        Mullv => (0x13, 0x40),
        Mulqv => (0x13, 0x60),
        _ => return None,
    })
}

fn memory_opcode(m: Mnemonic) -> Option<u32> {
    use Mnemonic::*;
    Some(match m {
        Lda => 0x08,
        Ldah => 0x09,
        Ldbu => 0x0A,
        Ldwu => 0x0C,
        Stw => 0x0D,
        Stb => 0x0E,
        Ldl => 0x28,
        Ldq => 0x29,
        Stl => 0x2C,
        Stq => 0x2D,
        _ => return None,
    })
}

fn branch_opcode(m: Mnemonic) -> Option<u32> {
    use Mnemonic::*;
    Some(match m {
        Br => 0x30,
        Bsr => 0x34,
        Blbc => 0x38,
        Beq => 0x39,
        Blt => 0x3A,
        Ble => 0x3B,
        Blbs => 0x3C,
        Bne => 0x3D,
        Bge => 0x3E,
        Bgt => 0x3F,
        _ => return None,
    })
}

/// Encodes a decoded instruction back into a 32-bit word. Inverse of
/// [`decode`] for all decodable instructions; `Illegal` re-emits the
/// preserved raw word.
pub(crate) fn encode(insn: &Insn) -> u32 {
    let ra = (insn.ra.number() as u32) << 21;
    let rb = (insn.rb.number() as u32) << 16;
    let rc = insn.rc.number() as u32;

    if let Some(op) = memory_opcode(insn.mnemonic) {
        return (op << 26) | ra | rb | ((insn.imm as u32) & 0xffff);
    }
    if let Some(op) = branch_opcode(insn.mnemonic) {
        return (op << 26) | ra | ((insn.imm as u32) & 0x1f_ffff);
    }
    if let Some((op, func)) = operate_codes(insn.mnemonic) {
        let mut w = (op << 26) | ra | (func << 5) | rc;
        if insn.uses_literal {
            w |= 1 << 12;
            w |= ((insn.imm as u32) & 0xff) << 13;
        } else {
            w |= rb;
        }
        return w;
    }
    match insn.mnemonic {
        Mnemonic::Jmp => (0x1A << 26) | ra | rb,
        Mnemonic::Jsr => (0x1A << 26) | ra | rb | (1 << 14),
        Mnemonic::Ret => (0x1A << 26) | ra | rb | (2 << 14),
        Mnemonic::CallPal => insn.pal.to_bits(),
        _ => insn.raw,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Every implemented operate/memory/branch/jump mnemonic, constructed
    /// with distinctive fields.
    fn samples() -> Vec<Insn> {
        use Mnemonic::*;
        let mut v = Vec::new();
        let ops = [
            Addl, S4addl, Subl, S4subl, Addq, S4addq, S8addq, Subq, S8subq, Addlv, Sublv, Addqv,
            Subqv, Cmpeq, Cmplt, Cmple, Cmpult, Cmpule, Cmpbge, And, Bic, Bis, Ornot, Xor, Eqv,
            Cmoveq, Cmovne, Cmovlbs, Cmovlbc, Cmovlt, Cmovge, Cmovle, Cmovgt, Sll, Srl, Sra, Mull,
            Mulq, Umulh, Mullv, Mulqv, Zap, Zapnot, Extbl, Extwl, Extll, Extql, Insbl,
            Inswl, Insll, Insql, Mskbl, Mskwl, Mskll, Mskql,
        ];
        for (i, m) in ops.into_iter().enumerate() {
            let lit = i % 2 == 0;
            v.push(Insn {
                mnemonic: m,
                ra: Reg::from_number((i % 31) as u8),
                rb: if lit { Reg::R31 } else { Reg::from_number(((i + 7) % 31) as u8) },
                rc: Reg::from_number(((i + 13) % 31) as u8),
                imm: if lit { (i as i64 * 11) % 256 } else { 0 },
                uses_literal: lit,
                pal: PalFunc::Halt,
                raw: 0,
            });
        }
        for (i, m) in [Lda, Ldah, Ldbu, Ldwu, Ldl, Ldq, Stb, Stw, Stl, Stq]
            .into_iter()
            .enumerate()
        {
            v.push(Insn {
                mnemonic: m,
                ra: Reg::from_number((i % 31) as u8),
                rb: Reg::from_number(((i + 3) % 31) as u8),
                rc: Reg::R31,
                imm: (i as i64 * 257) - 1000,
                uses_literal: false,
                pal: PalFunc::Halt,
                raw: 0,
            });
        }
        for (i, m) in [Br, Bsr, Blbc, Beq, Blt, Ble, Blbs, Bne, Bge, Bgt]
            .into_iter()
            .enumerate()
        {
            v.push(Insn {
                mnemonic: m,
                ra: Reg::from_number((i % 31) as u8),
                rb: Reg::R31,
                rc: Reg::R31,
                imm: (i as i64 * 1023) - 5000,
                uses_literal: false,
                pal: PalFunc::Halt,
                raw: 0,
            });
        }
        for m in [Jmp, Jsr, Ret] {
            v.push(Insn {
                mnemonic: m,
                ra: Reg::R26,
                rb: Reg::R27,
                rc: Reg::R31,
                imm: 0,
                uses_literal: false,
                pal: PalFunc::Halt,
                raw: 0,
            });
        }
        v
    }

    #[test]
    fn encode_decode_round_trip() {
        for insn in samples() {
            let w = insn.encode();
            let d = decode(w);
            assert_eq!(d.mnemonic, insn.mnemonic, "word {w:#010x}");
            assert_eq!(d.ra, insn.ra);
            assert_eq!(d.uses_literal, insn.uses_literal);
            if insn.uses_literal || insn.format() != crate::Format::Operate {
                assert_eq!(d.imm, insn.imm, "{insn:?}");
            } else {
                assert_eq!(d.rb, insn.rb);
            }
            if insn.format() == crate::Format::Operate {
                assert_eq!(d.rc, insn.rc);
            }
            // Re-encoding the decode must reproduce the word exactly.
            assert_eq!(d.encode(), w);
        }
    }

    #[test]
    fn unknown_words_decode_as_illegal() {
        // Opcode 0x17 is a floating-point opcode — not implemented.
        let w = 0x17u32 << 26;
        let d = decode(w);
        assert_eq!(d.mnemonic, Mnemonic::Illegal);
        assert_eq!(d.raw, w);
        assert_eq!(d.encode(), w);
    }

    #[test]
    fn unknown_operate_function_is_illegal() {
        // Opcode 0x10 with function 0x7F is unassigned.
        let w = (0x10u32 << 26) | (0x7F << 5);
        assert_eq!(decode(w).mnemonic, Mnemonic::Illegal);
    }

    #[test]
    fn call_pal_functions() {
        let halt = decode(0x0000_0000);
        assert_eq!(halt.mnemonic, Mnemonic::CallPal);
        assert_eq!(halt.pal, PalFunc::Halt);
        let sys = decode(0x0000_0083);
        assert_eq!(sys.pal, PalFunc::CallSys);
        let other = decode(0x0000_1234);
        assert_eq!(other.pal, PalFunc::Other(0x1234));
        assert_eq!(other.encode(), 0x0000_1234);
    }

    #[test]
    fn literal_operand_decoding() {
        // ADDQ r1, #200, r3.
        let w = (0x10u32 << 26) | (1 << 21) | (200 << 13) | (1 << 12) | (0x20 << 5) | 3;
        let d = decode(w);
        assert!(d.uses_literal);
        assert_eq!(d.imm, 200);
        assert_eq!(d.srcs(), [Some(Reg::R1), None, None]);
    }

    #[test]
    fn displacement_sign_extension() {
        let mut a = crate::Asm::new(0);
        a.ldq(Reg::R1, Reg::R2, -8);
        let d = decode(a.finish_words()[0]);
        assert_eq!(d.imm, -8);
    }

    #[test]
    fn single_bit_flip_changes_decode_meaningfully() {
        // ADDQ r1, r2, r3; flipping func bit 3 (bit 8 of the word: 0x20->0x29)
        // turns it into SUBQ.
        let addq = (0x10u32 << 26) | (1 << 21) | (2 << 16) | (0x20 << 5) | 3;
        assert_eq!(decode(addq).mnemonic, Mnemonic::Addq);
        let flipped = addq ^ (1 << 5) ^ (1 << 8);
        assert_eq!(decode(flipped).mnemonic, Mnemonic::Subq);
    }
}
