use std::fmt;

use crate::Reg;

/// The instruction mnemonics of the implemented Alpha subset.
///
/// The subset matches the paper's processor model: integer operate,
/// integer memory, control transfer, and `CALL_PAL`. Floating point and
/// synchronizing memory operations are not implemented. `/V` variants trap
/// on signed overflow and feed the paper's `except` failure mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum Mnemonic {
    // Memory displacement format (opcode 0x08..0x0F, 0x28..0x2D).
    Lda, Ldah,
    Ldbu, Ldwu, Ldl, Ldq,
    Stb, Stw, Stl, Stq,
    // Integer arithmetic (opcode 0x10).
    Addl, S4addl, Subl, S4subl, Addq, S4addq, S8addq, Subq, S8subq,
    Addlv, Sublv, Addqv, Subqv,
    Cmpeq, Cmplt, Cmple, Cmpult, Cmpule, Cmpbge,
    // Integer logical / conditional move (opcode 0x11).
    And, Bic, Bis, Ornot, Xor, Eqv,
    Cmoveq, Cmovne, Cmovlbs, Cmovlbc, Cmovlt, Cmovge, Cmovle, Cmovgt,
    // Shifts and byte manipulation (opcode 0x12).
    Sll, Srl, Sra,
    Zap, Zapnot,
    Extbl, Extwl, Extll, Extql,
    Insbl, Inswl, Insll, Insql,
    Mskbl, Mskwl, Mskll, Mskql,
    // Multiplies (opcode 0x13) — executed by the complex ALU.
    Mull, Mulq, Umulh, Mullv, Mulqv,
    // Unconditional control (branch format / JMP group).
    Br, Bsr,
    Jmp, Jsr, Ret,
    // Conditional branches (branch format).
    Blbc, Beq, Blt, Ble, Blbs, Bne, Bge, Bgt,
    // PALcode.
    CallPal,
    /// Any word that does not decode to an implemented instruction.
    /// Retiring one raises an OPCDEC-style exception.
    Illegal,
}

/// Alpha instruction encoding formats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Format {
    /// `opcode ra rb disp16` — loads, stores, LDA/LDAH.
    Memory,
    /// `opcode ra disp21` — BR/BSR and conditional branches.
    Branch,
    /// `opcode ra rb/lit func rc` — integer operate.
    Operate,
    /// `opcode ra rb hint` — JMP/JSR/RET.
    MemoryJump,
    /// `opcode palfunc26` — CALL_PAL.
    Pal,
}

/// Execution resource class, mapping each instruction to the functional
/// unit that executes it in the pipeline model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecClass {
    /// Single-cycle integer operations (simple ALUs).
    SimpleAlu,
    /// Multi-cycle integer operations (the complex ALU, 2–5 cycles).
    ComplexAlu,
    /// Control transfers (the branch ALU).
    Branch,
    /// Memory loads (address generation unit + data cache).
    Load,
    /// Memory stores (address generation unit + store queue).
    Store,
    /// `CALL_PAL`: serialized, executed at retirement.
    Pal,
}

/// PAL function codes recognized by `CALL_PAL`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PalFunc {
    /// Stop the machine.
    Halt,
    /// OSF/1-style system call dispatch (`callsys`).
    CallSys,
    /// Unrecognized PAL function (raises an exception when retired).
    Other(u32),
}

impl PalFunc {
    /// Decodes a 26-bit PAL function field.
    pub fn from_bits(bits: u32) -> PalFunc {
        match bits & 0x03ff_ffff {
            0x00 => PalFunc::Halt,
            0x83 => PalFunc::CallSys,
            other => PalFunc::Other(other),
        }
    }

    /// The 26-bit encoding of this PAL function.
    pub fn to_bits(self) -> u32 {
        match self {
            PalFunc::Halt => 0x00,
            PalFunc::CallSys => 0x83,
            PalFunc::Other(bits) => bits & 0x03ff_ffff,
        }
    }
}

/// A decoded instruction.
///
/// All fields are kept regardless of format; unused register fields decode
/// as `R31` so downstream consumers can treat every instruction uniformly.
/// The original 32-bit word is retained in [`Insn::raw`] (the pipeline's
/// `insn` state category stores raw words, and the parity protection
/// mechanism computes parity over them).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Insn {
    /// Decoded operation.
    pub mnemonic: Mnemonic,
    /// `Ra` field (condition/data source for stores and branches).
    pub ra: Reg,
    /// `Rb` field (base register / second operand).
    pub rb: Reg,
    /// `Rc` field (operate-format destination).
    pub rc: Reg,
    /// Sign-extended displacement (memory/branch formats) or zero-extended
    /// 8-bit literal (operate format with the literal bit set).
    pub imm: i64,
    /// Whether the operate format's literal bit was set (`imm` replaces `Rb`).
    pub uses_literal: bool,
    /// PAL function for `CALL_PAL`.
    pub pal: PalFunc,
    /// The raw 32-bit instruction word this decoded from.
    pub raw: u32,
}

impl Insn {
    /// The encoding format of this instruction.
    pub fn format(&self) -> Format {
        use Mnemonic::*;
        match self.mnemonic {
            Lda | Ldah | Ldbu | Ldwu | Ldl | Ldq | Stb | Stw | Stl | Stq => Format::Memory,
            Br | Bsr | Blbc | Beq | Blt | Ble | Blbs | Bne | Bge | Bgt => Format::Branch,
            Jmp | Jsr | Ret => Format::MemoryJump,
            CallPal => Format::Pal,
            Illegal => Format::Pal, // treated as an opaque word
            _ => Format::Operate,
        }
    }

    /// The functional unit class executing this instruction.
    pub fn exec_class(&self) -> ExecClass {
        use Mnemonic::*;
        match self.mnemonic {
            Ldbu | Ldwu | Ldl | Ldq => ExecClass::Load,
            Stb | Stw | Stl | Stq => ExecClass::Store,
            Br | Bsr | Jmp | Jsr | Ret | Blbc | Beq | Blt | Ble | Blbs | Bne | Bge | Bgt => {
                ExecClass::Branch
            }
            Mull | Mulq | Umulh | Mullv | Mulqv => ExecClass::ComplexAlu,
            CallPal | Illegal => ExecClass::Pal,
            _ => ExecClass::SimpleAlu,
        }
    }

    /// Execution latency in cycles once issued to a functional unit.
    ///
    /// Simple operations take 1 cycle; the complex ALU takes 2–5 cycles
    /// depending on the operation (per the paper's Figure 2); loads take an
    /// additional cache access modeled by the memory stage.
    pub fn exec_latency(&self) -> u8 {
        use Mnemonic::*;
        match self.mnemonic {
            Mull => 3,
            Mullv => 3,
            Mulq => 4,
            Mulqv => 4,
            Umulh => 5,
            _ => 1,
        }
    }

    /// Architectural source registers, up to three.
    ///
    /// The third slot is used only by conditional moves, which read their
    /// old destination value (the Alpha 21264 splits CMOV into two µops for
    /// this reason; our scheduler carries a third source operand instead),
    /// and by stores (store data in `Ra` occupies slot 0, the base register
    /// slot 1).
    pub fn srcs(&self) -> [Option<Reg>; 3] {
        use Mnemonic::*;
        let none_zero = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self.format() {
            Format::Memory => match self.mnemonic {
                Lda | Ldah | Ldbu | Ldwu | Ldl | Ldq => [none_zero(self.rb), None, None],
                // Stores read data (Ra) and base (Rb).
                _ => [none_zero(self.ra), none_zero(self.rb), None],
            },
            Format::Branch => match self.mnemonic {
                Br | Bsr => [None, None, None],
                _ => [none_zero(self.ra), None, None],
            },
            Format::MemoryJump => [none_zero(self.rb), None, None],
            Format::Pal => [None, None, None],
            Format::Operate => {
                let a = none_zero(self.ra);
                let b = if self.uses_literal { None } else { none_zero(self.rb) };
                if self.is_cmov() {
                    [a, b, none_zero(self.rc)]
                } else {
                    [a, b, None]
                }
            }
        }
    }

    /// Architectural destination register, if any (writes to `R31` count as
    /// no destination).
    pub fn dst(&self) -> Option<Reg> {
        use Mnemonic::*;
        let some = |r: Reg| if r.is_zero() { None } else { Some(r) };
        match self.mnemonic {
            Lda | Ldah | Ldbu | Ldwu | Ldl | Ldq => some(self.ra),
            Stb | Stw | Stl | Stq => None,
            Br | Bsr => some(self.ra),
            Jmp | Jsr | Ret => some(self.ra),
            Blbc | Beq | Blt | Ble | Blbs | Bne | Bge | Bgt => None,
            CallPal | Illegal => None,
            _ => some(self.rc),
        }
    }

    /// Whether this is a conditional move (reads its old destination).
    pub fn is_cmov(&self) -> bool {
        use Mnemonic::*;
        matches!(
            self.mnemonic,
            Cmoveq | Cmovne | Cmovlbs | Cmovlbc | Cmovlt | Cmovge | Cmovle | Cmovgt
        )
    }

    /// Whether this is a conditional branch.
    pub fn is_conditional_branch(&self) -> bool {
        use Mnemonic::*;
        matches!(self.mnemonic, Blbc | Beq | Blt | Ble | Blbs | Bne | Bge | Bgt)
    }

    /// Whether this is any control transfer.
    pub fn is_control(&self) -> bool {
        self.exec_class() == ExecClass::Branch
    }

    /// Whether this instruction transfers control through a register
    /// (`JMP`/`JSR`/`RET`), i.e. its target is not computable at fetch.
    pub fn is_indirect(&self) -> bool {
        matches!(self.mnemonic, Mnemonic::Jmp | Mnemonic::Jsr | Mnemonic::Ret)
    }

    /// Whether this instruction pushes a return address (`BSR`/`JSR`).
    pub fn is_call(&self) -> bool {
        matches!(self.mnemonic, Mnemonic::Bsr | Mnemonic::Jsr)
    }

    /// Whether this instruction pops the return address stack (`RET`).
    pub fn is_return(&self) -> bool {
        self.mnemonic == Mnemonic::Ret
    }

    /// Direct branch target for branch-format instructions: `PC + 4 + 4*disp`.
    pub fn branch_target(&self, pc: u64) -> u64 {
        pc.wrapping_add(4).wrapping_add((self.imm as u64).wrapping_mul(4))
    }

    /// Memory access size in bytes for loads and stores.
    pub fn access_size(&self) -> u64 {
        use Mnemonic::*;
        match self.mnemonic {
            Ldbu | Stb => 1,
            Ldwu | Stw => 2,
            Ldl | Stl => 4,
            Ldq | Stq => 8,
            _ => 0,
        }
    }

    /// Whether the instruction reads memory.
    pub fn is_load(&self) -> bool {
        self.exec_class() == ExecClass::Load
    }

    /// Whether the instruction writes memory.
    pub fn is_store(&self) -> bool {
        self.exec_class() == ExecClass::Store
    }

    /// Re-encodes the decoded instruction into its 32-bit word.
    ///
    /// For instructions produced by [`decode`](crate::decode), this is the
    /// inverse operation (`Illegal` re-encodes to the captured raw word).
    ///
    /// ```
    /// use tfsim_isa::{decode, Asm, Reg};
    /// let mut a = Asm::new(0);
    /// a.subq(Reg::R4, Reg::R5, Reg::R6);
    /// let w = a.finish_words()[0];
    /// assert_eq!(decode(w).encode(), w);
    /// ```
    pub fn encode(&self) -> u32 {
        crate::decode::encode(self)
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let m = format!("{:?}", self.mnemonic).to_lowercase();
        match self.format() {
            Format::Memory => write!(f, "{} {}, {}({})", m, self.ra, self.imm, self.rb),
            Format::Branch => write!(f, "{} {}, {:+}", m, self.ra, self.imm),
            Format::MemoryJump => write!(f, "{} {}, ({})", m, self.ra, self.rb),
            Format::Pal => match self.mnemonic {
                Mnemonic::CallPal => write!(f, "call_pal {:#x}", self.pal.to_bits()),
                _ => write!(f, ".illegal {:#010x}", self.raw),
            },
            Format::Operate => {
                if self.uses_literal {
                    write!(f, "{} {}, #{}, {}", m, self.ra, self.imm, self.rc)
                } else {
                    write!(f, "{} {}, {}, {}", m, self.ra, self.rb, self.rc)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode;

    fn op(m: Mnemonic, ra: Reg, rb: Reg, rc: Reg) -> Insn {
        Insn {
            mnemonic: m,
            ra,
            rb,
            rc,
            imm: 0,
            uses_literal: false,
            pal: PalFunc::Halt,
            raw: 0,
        }
    }

    #[test]
    fn cmov_reads_old_destination() {
        let i = op(Mnemonic::Cmoveq, Reg::R1, Reg::R2, Reg::R3);
        assert_eq!(i.srcs(), [Some(Reg::R1), Some(Reg::R2), Some(Reg::R3)]);
        assert_eq!(i.dst(), Some(Reg::R3));
    }

    #[test]
    fn store_reads_data_and_base() {
        let i = op(Mnemonic::Stq, Reg::R1, Reg::R2, Reg::R31);
        assert_eq!(i.srcs(), [Some(Reg::R1), Some(Reg::R2), None]);
        assert_eq!(i.dst(), None);
        assert!(i.is_store());
        assert_eq!(i.access_size(), 8);
    }

    #[test]
    fn zero_register_sources_are_elided() {
        let i = op(Mnemonic::Addq, Reg::R31, Reg::R31, Reg::R1);
        assert_eq!(i.srcs(), [None, None, None]);
    }

    #[test]
    fn writes_to_r31_have_no_destination() {
        let i = op(Mnemonic::Addq, Reg::R1, Reg::R2, Reg::R31);
        assert_eq!(i.dst(), None);
    }

    #[test]
    fn branch_target_arithmetic() {
        let mut i = op(Mnemonic::Beq, Reg::R1, Reg::R31, Reg::R31);
        i.imm = -2;
        assert_eq!(i.branch_target(0x1000), 0x1000 + 4 - 8);
        i.imm = 3;
        assert_eq!(i.branch_target(0x1000), 0x1000 + 4 + 12);
    }

    #[test]
    fn exec_latencies_span_complex_alu_range() {
        assert_eq!(op(Mnemonic::Addq, Reg::R1, Reg::R2, Reg::R3).exec_latency(), 1);
        assert_eq!(op(Mnemonic::Mull, Reg::R1, Reg::R2, Reg::R3).exec_latency(), 3);
        assert_eq!(op(Mnemonic::Umulh, Reg::R1, Reg::R2, Reg::R3).exec_latency(), 5);
    }

    #[test]
    fn control_classification() {
        assert!(op(Mnemonic::Beq, Reg::R1, Reg::R31, Reg::R31).is_conditional_branch());
        assert!(op(Mnemonic::Ret, Reg::R31, Reg::R26, Reg::R31).is_indirect());
        assert!(op(Mnemonic::Jsr, Reg::R26, Reg::R27, Reg::R31).is_call());
        assert!(!op(Mnemonic::Br, Reg::R31, Reg::R31, Reg::R31).is_conditional_branch());
        assert!(op(Mnemonic::Br, Reg::R31, Reg::R31, Reg::R31).is_control());
    }

    #[test]
    fn display_formats() {
        let mut a = crate::Asm::new(0);
        a.ldq(Reg::R1, Reg::R2, 16);
        let i = decode(a.finish_words()[0]);
        assert_eq!(i.to_string(), "ldq r1, 16(r2)");
    }

    #[test]
    fn pal_func_round_trip() {
        for f in [PalFunc::Halt, PalFunc::CallSys, PalFunc::Other(0x1234)] {
            assert_eq!(PalFunc::from_bits(f.to_bits()), f);
        }
    }
}
