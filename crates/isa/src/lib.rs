#![warn(missing_docs)]

//! # tfsim-isa — the Alpha AXP integer subset
//!
//! This crate implements the instruction set executed by both the
//! architectural simulator (`tfsim-arch`) and the microarchitectural
//! pipeline model (`tfsim-uarch`): the integer subset of the Alpha AXP
//! architecture used by the DSN 2004 paper *Characterizing the Effects of
//! Transient Faults on a High-Performance Processor Pipeline* (no floating
//! point, no synchronizing memory operations).
//!
//! Real Alpha encodings are used so that fault injection into stored
//! instruction words (the `insn` state category) exercises realistic decode
//! behaviour: a single bit flip can turn `ADDQ` into `SUBQ`, a branch into a
//! different branch, or any word into an illegal instruction.
//!
//! The crate provides:
//!
//! * [`Reg`] — architectural register names (`R31` reads as zero).
//! * [`Insn`] and [`Mnemonic`] — the decoded instruction form.
//! * [`decode`](fn@decode) / [`Insn::encode`] — bidirectional translation
//!   between 32-bit instruction words and decoded form.
//! * [`alu`] — pure integer semantics shared by both simulators, so they
//!   cannot disagree on arithmetic.
//! * [`Asm`] — a builder-style assembler with labels, used by the synthetic
//!   workloads.
//! * [`Program`] — an assembled program image (sections + entry point).
//!
//! ```
//! use tfsim_isa::{Asm, Reg, decode, Mnemonic};
//!
//! let mut a = Asm::new(0x1000);
//! a.addq(Reg::R1, Reg::R2, Reg::R3);
//! let words = a.finish_words();
//! let insn = decode(words[0]);
//! assert_eq!(insn.mnemonic, Mnemonic::Addq);
//! ```

pub mod alu;
mod asm;
mod decode;
mod insn;
mod program;
mod reg;
pub mod text;

pub use asm::{Asm, Label};
pub use decode::decode;
pub use insn::{ExecClass, Format, Insn, Mnemonic, PalFunc};
pub use program::{Program, Section};
pub use reg::Reg;

/// Syscall numbers recognized by the `CALL_PAL callsys` convention.
///
/// The syscall number is read from `R0` (`v0`); arguments from `R16..R18`
/// (`a0..a2`). This mirrors the OSF/1 PALcode calling convention closely
/// enough for the self-contained workloads used in the reproduction.
pub mod syscall {
    /// `exit(code)` — halts the program with an exit code in `a0`.
    pub const EXIT: u64 = 1;
    /// `write(fd, buf, len)` — appends `len` bytes at `buf` to the output
    /// stream. `fd` is ignored (there is only one stream).
    pub const WRITE: u64 = 4;
}
