//! Pure integer semantics of the implemented Alpha subset.
//!
//! Both the architectural simulator and the pipeline's functional units
//! call into this module, so the two models cannot diverge on arithmetic.
//! All operations are defined for every input (wrapping where hardware
//! wraps); `/V` variants report signed overflow through [`ArithTrap`].

use crate::Mnemonic;

/// An arithmetic trap raised by a `/V` (overflow-checking) operation.
///
/// In the pipeline model the trap is taken when the instruction retires,
/// producing the paper's `except` failure mode when caused by a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ArithTrap;

impl std::fmt::Display for ArithTrap {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "integer arithmetic overflow trap")
    }
}

impl std::error::Error for ArithTrap {}

fn sext32(v: u64) -> u64 {
    v as u32 as i32 as i64 as u64
}

fn add32v(a: u64, b: u64) -> Result<u64, ArithTrap> {
    match (a as u32 as i32).checked_add(b as u32 as i32) {
        Some(r) => Ok(r as i64 as u64),
        None => Err(ArithTrap),
    }
}

fn sub32v(a: u64, b: u64) -> Result<u64, ArithTrap> {
    match (a as u32 as i32).checked_sub(b as u32 as i32) {
        Some(r) => Ok(r as i64 as u64),
        None => Err(ArithTrap),
    }
}

fn mul32v(a: u64, b: u64) -> Result<u64, ArithTrap> {
    match (a as u32 as i32).checked_mul(b as u32 as i32) {
        Some(r) => Ok(r as i64 as u64),
        None => Err(ArithTrap),
    }
}

fn add64v(a: u64, b: u64) -> Result<u64, ArithTrap> {
    (a as i64).checked_add(b as i64).map(|r| r as u64).ok_or(ArithTrap)
}

fn sub64v(a: u64, b: u64) -> Result<u64, ArithTrap> {
    (a as i64).checked_sub(b as i64).map(|r| r as u64).ok_or(ArithTrap)
}

fn mul64v(a: u64, b: u64) -> Result<u64, ArithTrap> {
    (a as i64).checked_mul(b as i64).map(|r| r as u64).ok_or(ArithTrap)
}

/// Byte mask with `width` one-bytes starting at byte `pos` (bits beyond
/// bit 63 fall off, per the Alpha byte-manipulation semantics).
fn byte_field_mask(pos: u64, width: u64) -> u64 {
    let mut m = 0u64;
    for i in 0..width {
        let byte = pos + i;
        if byte < 8 {
            m |= 0xffu64 << (byte * 8);
        }
    }
    m
}

/// Applies a ZAP-style byte mask: clears each byte of `v` whose bit is set
/// in the low 8 bits of `mask`.
fn byte_zap(v: u64, mask: u64) -> u64 {
    let mut out = v;
    for i in 0..8 {
        if mask & (1 << i) != 0 {
            out &= !(0xffu64 << (i * 8));
        }
    }
    out
}

fn cmpbge(a: u64, b: u64) -> u64 {
    let mut mask = 0u64;
    for i in 0..8 {
        let ab = (a >> (i * 8)) as u8;
        let bb = (b >> (i * 8)) as u8;
        if ab >= bb {
            mask |= 1 << i;
        }
    }
    mask
}

/// Evaluates an operate-format instruction.
///
/// * `va`, `vb` — the `Ra` and `Rb` (or literal) operand values.
/// * `old_c` — the previous value of `Rc`, consumed only by conditional
///   moves.
///
/// # Errors
///
/// Returns [`ArithTrap`] when a `/V` operation overflows.
///
/// ```
/// use tfsim_isa::{alu, Mnemonic};
/// assert_eq!(alu::operate(Mnemonic::Addq, 2, 3, 0), Ok(5));
/// assert_eq!(alu::operate(Mnemonic::Cmoveq, 0, 7, 9), Ok(7));
/// assert_eq!(alu::operate(Mnemonic::Cmoveq, 1, 7, 9), Ok(9));
/// assert!(alu::operate(Mnemonic::Addqv, u64::MAX / 2, u64::MAX / 2, 0).is_err());
/// ```
pub fn operate(m: Mnemonic, va: u64, vb: u64, old_c: u64) -> Result<u64, ArithTrap> {
    use Mnemonic::*;
    Ok(match m {
        Addl => sext32(va.wrapping_add(vb)),
        S4addl => sext32((va.wrapping_mul(4)).wrapping_add(vb)),
        Subl => sext32(va.wrapping_sub(vb)),
        S4subl => sext32((va.wrapping_mul(4)).wrapping_sub(vb)),
        Addq => va.wrapping_add(vb),
        S4addq => va.wrapping_mul(4).wrapping_add(vb),
        S8addq => va.wrapping_mul(8).wrapping_add(vb),
        Subq => va.wrapping_sub(vb),
        S8subq => va.wrapping_mul(8).wrapping_sub(vb),
        Addlv => add32v(va, vb)?,
        Sublv => sub32v(va, vb)?,
        Addqv => add64v(va, vb)?,
        Subqv => sub64v(va, vb)?,
        Cmpeq => (va == vb) as u64,
        Cmplt => ((va as i64) < (vb as i64)) as u64,
        Cmple => ((va as i64) <= (vb as i64)) as u64,
        Cmpult => (va < vb) as u64,
        Cmpule => (va <= vb) as u64,
        Cmpbge => cmpbge(va, vb),
        And => va & vb,
        Bic => va & !vb,
        Bis => va | vb,
        Ornot => va | !vb,
        Xor => va ^ vb,
        Eqv => va ^ !vb,
        Cmoveq => cmov(va == 0, vb, old_c),
        Cmovne => cmov(va != 0, vb, old_c),
        Cmovlbs => cmov(va & 1 == 1, vb, old_c),
        Cmovlbc => cmov(va & 1 == 0, vb, old_c),
        Cmovlt => cmov((va as i64) < 0, vb, old_c),
        Cmovge => cmov((va as i64) >= 0, vb, old_c),
        Cmovle => cmov((va as i64) <= 0, vb, old_c),
        Cmovgt => cmov((va as i64) > 0, vb, old_c),
        Sll => va << (vb & 63),
        Srl => va >> (vb & 63),
        Sra => ((va as i64) >> (vb & 63)) as u64,
        Zap => byte_zap(va, vb),
        Zapnot => byte_zap(va, !vb & 0xff),
        Extbl => (va >> ((vb & 7) * 8)) & 0xff,
        Extwl => (va >> ((vb & 7) * 8)) & 0xffff,
        Extll => (va >> ((vb & 7) * 8)) & 0xffff_ffff,
        Extql => va >> ((vb & 7) * 8),
        Insbl => (va & 0xff) << ((vb & 7) * 8),
        Inswl => (va & 0xffff) << ((vb & 7) * 8),
        Insll => (va & 0xffff_ffff).wrapping_shl(((vb & 7) * 8) as u32),
        Insql => va.wrapping_shl(((vb & 7) * 8) as u32),
        Mskbl => va & !byte_field_mask(vb & 7, 1),
        Mskwl => va & !byte_field_mask(vb & 7, 2),
        Mskll => va & !byte_field_mask(vb & 7, 4),
        Mskql => va & !byte_field_mask(vb & 7, 8),
        Mull => sext32((va as u32 as u64).wrapping_mul(vb as u32 as u64)),
        Mulq => va.wrapping_mul(vb),
        Umulh => (((va as u128) * (vb as u128)) >> 64) as u64,
        Mullv => mul32v(va, vb)?,
        Mulqv => mul64v(va, vb)?,
        other => panic!("operate() called on non-operate mnemonic {other:?}"),
    })
}

fn cmov(cond: bool, vb: u64, old_c: u64) -> u64 {
    if cond {
        vb
    } else {
        old_c
    }
}

/// Evaluates a conditional branch's condition against the `Ra` value.
///
/// # Panics
///
/// Panics if `m` is not a conditional branch.
///
/// ```
/// use tfsim_isa::{alu, Mnemonic};
/// assert!(alu::branch_taken(Mnemonic::Beq, 0));
/// assert!(alu::branch_taken(Mnemonic::Blt, (-1i64) as u64));
/// assert!(!alu::branch_taken(Mnemonic::Bgt, 0));
/// ```
pub fn branch_taken(m: Mnemonic, va: u64) -> bool {
    use Mnemonic::*;
    match m {
        Beq => va == 0,
        Bne => va != 0,
        Blt => (va as i64) < 0,
        Ble => (va as i64) <= 0,
        Bgt => (va as i64) > 0,
        Bge => (va as i64) >= 0,
        Blbc => va & 1 == 0,
        Blbs => va & 1 == 1,
        other => panic!("branch_taken() called on non-branch mnemonic {other:?}"),
    }
}

/// Extends a loaded value to 64 bits per the load width: `LDL` sign-extends,
/// `LDBU`/`LDWU` zero-extend, `LDQ` is full-width.
pub fn extend_load(m: Mnemonic, raw: u64) -> u64 {
    use Mnemonic::*;
    match m {
        Ldbu => raw as u8 as u64,
        Ldwu => raw as u16 as u64,
        Ldl => raw as u32 as i32 as i64 as u64,
        Ldq => raw,
        other => panic!("extend_load() called on non-load mnemonic {other:?}"),
    }
}

/// Computes the effective value of `LDA`/`LDAH`.
pub fn lda_value(m: Mnemonic, vb: u64, disp: i64) -> u64 {
    match m {
        Mnemonic::Lda => vb.wrapping_add(disp as u64),
        Mnemonic::Ldah => vb.wrapping_add((disp as u64).wrapping_mul(65536)),
        other => panic!("lda_value() called on {other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Mnemonic::*;

    #[test]
    fn longword_ops_sign_extend() {
        assert_eq!(operate(Addl, 0x7fff_ffff, 1, 0), Ok(0xffff_ffff_8000_0000));
        assert_eq!(operate(Subl, 0, 1, 0), Ok(u64::MAX));
        assert_eq!(operate(Mull, 0x10000, 0x10000, 0), Ok(0)); // low 32 bits are 0
    }

    #[test]
    fn scaled_adds() {
        assert_eq!(operate(S4addq, 3, 5, 0), Ok(17));
        assert_eq!(operate(S8addq, 3, 5, 0), Ok(29));
        assert_eq!(operate(S8subq, 3, 5, 0), Ok(19));
        assert_eq!(operate(S4addl, 3, 5, 0), Ok(17));
        assert_eq!(operate(S4subl, 3, 5, 0), Ok(7));
    }

    #[test]
    fn overflow_traps() {
        assert_eq!(operate(Addlv, 1, 2, 0), Ok(3));
        assert!(operate(Addlv, 0x7fff_ffff, 1, 0).is_err());
        assert!(operate(Sublv, 0x8000_0000, 1, 0).is_err());
        assert!(operate(Addqv, i64::MAX as u64, 1, 0).is_err());
        assert!(operate(Subqv, i64::MIN as u64, 1, 0).is_err());
        assert!(operate(Mullv, 0x10000, 0x10000, 0).is_err());
        assert!(operate(Mulqv, 1 << 40, 1 << 40, 0).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(operate(Cmpeq, 5, 5, 0), Ok(1));
        assert_eq!(operate(Cmplt, u64::MAX, 0, 0), Ok(1)); // -1 < 0 signed
        assert_eq!(operate(Cmpult, u64::MAX, 0, 0), Ok(0));
        assert_eq!(operate(Cmpule, 3, 3, 0), Ok(1));
        assert_eq!(operate(Cmple, (-7i64) as u64, 0, 0), Ok(1));
    }

    #[test]
    fn cmpbge_per_byte_mask() {
        // Every byte of a equals every byte of b -> all 8 bits set.
        assert_eq!(operate(Cmpbge, 0x0101010101010101, 0x0101010101010101, 0), Ok(0xff));
        // Low byte smaller -> bit 0 clear.
        assert_eq!(operate(Cmpbge, 0x0100, 0x0101, 0), Ok(0xfe));
    }

    #[test]
    fn logicals() {
        assert_eq!(operate(Bic, 0b1111, 0b0101, 0), Ok(0b1010));
        assert_eq!(operate(Ornot, 0, 0, 0), Ok(u64::MAX));
        assert_eq!(operate(Eqv, 0xffff, 0xffff, 0), Ok(u64::MAX));
    }

    #[test]
    fn shifts_mask_count_to_six_bits() {
        assert_eq!(operate(Sll, 1, 65, 0), Ok(2));
        assert_eq!(operate(Srl, 0x8000_0000_0000_0000, 63, 0), Ok(1));
        assert_eq!(operate(Sra, (-8i64) as u64, 1, 0), Ok((-4i64) as u64));
    }

    #[test]
    fn byte_manipulation() {
        // ZAP clears masked bytes; ZAPNOT keeps them.
        assert_eq!(operate(Zap, 0x1122334455667788, 0x01, 0), Ok(0x1122334455667700));
        assert_eq!(operate(Zapnot, 0x1122334455667788, 0x01, 0), Ok(0x88));
        assert_eq!(operate(Zapnot, u64::MAX, 0x0f, 0), Ok(0xffff_ffff));
        // EXTxL pull a field from byte position vb&7.
        assert_eq!(operate(Extbl, 0x1122334455667788, 1, 0), Ok(0x77));
        assert_eq!(operate(Extwl, 0x1122334455667788, 2, 0), Ok(0x5566));
        assert_eq!(operate(Extll, 0x1122334455667788, 0, 0), Ok(0x55667788));
        assert_eq!(operate(Extql, 0x1122334455667788, 4, 0), Ok(0x11223344));
        // INSxL place a field at byte position vb&7.
        assert_eq!(operate(Insbl, 0xab, 2, 0), Ok(0xab0000));
        assert_eq!(operate(Inswl, 0x1234, 6, 0), Ok(0x1234u64 << 48));
        assert_eq!(operate(Insql, 0xff, 7, 0), Ok(0xffu64 << 56));
        // MSKxL clear a field at byte position vb&7.
        assert_eq!(operate(Mskbl, u64::MAX, 0, 0), Ok(0xffff_ffff_ffff_ff00));
        assert_eq!(operate(Mskwl, u64::MAX, 7, 0), Ok(0x00ff_ffff_ffff_ffff));
        assert_eq!(operate(Mskql, u64::MAX, 0, 0), Ok(0));
        assert_eq!(operate(Mskll, u64::MAX, 6, 0), Ok(0x0000_ffff_ffff_ffff));
    }

    #[test]
    fn multiplies() {
        assert_eq!(operate(Mulq, 1 << 32, 1 << 32, 0), Ok(0));
        assert_eq!(operate(Umulh, 1 << 32, 1 << 32, 0), Ok(1));
        assert_eq!(operate(Mull, 7, 6, 0), Ok(42));
    }

    #[test]
    fn all_branch_conditions() {
        assert!(branch_taken(Beq, 0) && !branch_taken(Beq, 1));
        assert!(branch_taken(Bne, 1) && !branch_taken(Bne, 0));
        assert!(branch_taken(Blt, u64::MAX) && !branch_taken(Blt, 0));
        assert!(branch_taken(Ble, 0) && !branch_taken(Ble, 1));
        assert!(branch_taken(Bgt, 1) && !branch_taken(Bgt, 0));
        assert!(branch_taken(Bge, 0) && !branch_taken(Bge, u64::MAX));
        assert!(branch_taken(Blbc, 2) && !branch_taken(Blbc, 3));
        assert!(branch_taken(Blbs, 3) && !branch_taken(Blbs, 2));
    }

    #[test]
    fn load_extension() {
        assert_eq!(extend_load(Ldbu, 0xfff0), 0xf0);
        assert_eq!(extend_load(Ldwu, 0xa_ffff), 0xffff);
        assert_eq!(extend_load(Ldl, 0x8000_0000), 0xffff_ffff_8000_0000);
        assert_eq!(extend_load(Ldq, u64::MAX), u64::MAX);
    }

    #[test]
    fn lda_values() {
        assert_eq!(lda_value(Lda, 0x1000, -16), 0xff0);
        assert_eq!(lda_value(Ldah, 0, 2), 0x20000);
        assert_eq!(lda_value(Ldah, 0x10, -1), 0x10u64.wrapping_sub(0x10000));
    }
}
