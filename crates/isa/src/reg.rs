use std::fmt;

/// An Alpha architectural integer register, `R0` through `R31`.
///
/// `R31` is hardwired to zero: reads return zero and writes are discarded.
/// The standard OSF/1 software names are available through
/// [`Reg::software_name`].
///
/// ```
/// use tfsim_isa::Reg;
/// assert_eq!(Reg::R31.number(), 31);
/// assert!(Reg::R31.is_zero());
/// assert_eq!(Reg::from_number(16), Reg::R16);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Reg {
    R0 = 0, R1, R2, R3, R4, R5, R6, R7,
    R8, R9, R10, R11, R12, R13, R14, R15,
    R16, R17, R18, R19, R20, R21, R22, R23,
    R24, R25, R26, R27, R28, R29, R30, R31,
}

impl Reg {
    /// Number of architectural integer registers.
    pub const COUNT: usize = 32;

    /// The stack pointer by software convention (`$sp` = `R30`).
    pub const SP: Reg = Reg::R30;
    /// The return-address register by software convention (`$ra` = `R26`).
    pub const RA: Reg = Reg::R26;
    /// The syscall-number / return-value register (`$v0` = `R0`).
    pub const V0: Reg = Reg::R0;
    /// First argument register (`$a0` = `R16`).
    pub const A0: Reg = Reg::R16;
    /// Second argument register (`$a1` = `R17`).
    pub const A1: Reg = Reg::R17;
    /// Third argument register (`$a2` = `R18`).
    pub const A2: Reg = Reg::R18;
    /// The always-zero register (`R31`).
    pub const ZERO: Reg = Reg::R31;

    /// Returns the register for an encoded 5-bit register number.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub fn from_number(n: u8) -> Reg {
        assert!(n < 32, "register number out of range: {n}");
        // SAFETY-free: match generated below keeps this fully safe.
        ALL_REGS[n as usize]
    }

    /// The 5-bit register number used in instruction encodings.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Whether this is the hardwired-zero register `R31`.
    pub fn is_zero(self) -> bool {
        self == Reg::R31
    }

    /// The OSF/1 software name (`v0`, `t0`..`t7`, `s0`..`s5`, `fp`, `a0`..,
    /// `ra`, `sp`, `zero`, ...).
    pub fn software_name(self) -> &'static str {
        SOFTWARE_NAMES[self.number() as usize]
    }

    /// Iterator over all 32 registers in numeric order.
    pub fn all() -> impl Iterator<Item = Reg> {
        ALL_REGS.iter().copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.number())
    }
}

const ALL_REGS: [Reg; 32] = [
    Reg::R0, Reg::R1, Reg::R2, Reg::R3, Reg::R4, Reg::R5, Reg::R6, Reg::R7,
    Reg::R8, Reg::R9, Reg::R10, Reg::R11, Reg::R12, Reg::R13, Reg::R14, Reg::R15,
    Reg::R16, Reg::R17, Reg::R18, Reg::R19, Reg::R20, Reg::R21, Reg::R22, Reg::R23,
    Reg::R24, Reg::R25, Reg::R26, Reg::R27, Reg::R28, Reg::R29, Reg::R30, Reg::R31,
];

const SOFTWARE_NAMES: [&str; 32] = [
    "v0", "t0", "t1", "t2", "t3", "t4", "t5", "t6",
    "t7", "s0", "s1", "s2", "s3", "s4", "s5", "fp",
    "a0", "a1", "a2", "a3", "a4", "a5", "t8", "t9",
    "t10", "t11", "ra", "pv", "at", "gp", "sp", "zero",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_numbers() {
        for n in 0..32u8 {
            assert_eq!(Reg::from_number(n).number(), n);
        }
    }

    #[test]
    fn zero_register() {
        assert!(Reg::ZERO.is_zero());
        assert!(!Reg::R0.is_zero());
        assert_eq!(Reg::ZERO, Reg::R31);
    }

    #[test]
    #[should_panic(expected = "register number out of range")]
    fn out_of_range_panics() {
        let _ = Reg::from_number(32);
    }

    #[test]
    fn software_names() {
        assert_eq!(Reg::R0.software_name(), "v0");
        assert_eq!(Reg::R30.software_name(), "sp");
        assert_eq!(Reg::R31.software_name(), "zero");
    }

    #[test]
    fn display_uses_numeric_name() {
        assert_eq!(Reg::R17.to_string(), "r17");
    }

    #[test]
    fn all_yields_each_register_once() {
        let regs: Vec<Reg> = Reg::all().collect();
        assert_eq!(regs.len(), 32);
        for (i, r) in regs.iter().enumerate() {
            assert_eq!(r.number() as usize, i);
        }
    }
}
