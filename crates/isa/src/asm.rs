//! A builder-style assembler with label support.
//!
//! Workloads are written against this API rather than a textual assembler:
//! it is type-checked, supports forward references through [`Label`], and
//! produces raw instruction words directly.
//!
//! ```
//! use tfsim_isa::{Asm, Reg};
//!
//! let mut a = Asm::new(0x1_0000);
//! a.li(Reg::R1, 10);          // loop counter
//! let top = a.label();
//! a.bind(top);
//! a.subq_i(Reg::R1, 1, Reg::R1);
//! a.bne(Reg::R1, top);
//! a.halt();
//! assert!(a.finish_words().len() >= 4);
//! ```

use crate::{Insn, Mnemonic, PalFunc, Reg};

/// A forward-referencable code location. Create with [`Asm::label`], place
/// with [`Asm::bind`], and reference from branch-emitting methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Label(usize);

#[derive(Debug, Clone, Copy)]
struct Fixup {
    /// Index of the instruction word to patch.
    word_index: usize,
    label: Label,
}

/// The assembler. See the crate-level example for typical use.
#[derive(Debug, Clone)]
pub struct Asm {
    base: u64,
    words: Vec<u32>,
    labels: Vec<Option<u64>>,
    fixups: Vec<Fixup>,
}

impl Asm {
    /// Creates an assembler emitting code at `base` (must be 4-byte aligned).
    ///
    /// # Panics
    ///
    /// Panics if `base` is not 4-byte aligned.
    pub fn new(base: u64) -> Asm {
        assert_eq!(base % 4, 0, "code base must be 4-byte aligned");
        Asm { base, words: Vec::new(), labels: Vec::new(), fixups: Vec::new() }
    }

    /// The address the next emitted instruction will occupy.
    pub fn here(&self) -> u64 {
        self.base + 4 * self.words.len() as u64
    }

    /// The base address passed to [`Asm::new`].
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Creates a fresh, unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Binds `label` to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.here());
    }

    /// Creates a label already bound to the current position.
    pub fn here_label(&mut self) -> Label {
        let l = self.label();
        self.bind(l);
        l
    }

    fn emit(&mut self, insn: Insn) {
        self.words.push(insn.encode());
    }

    fn emit_branch(&mut self, m: Mnemonic, ra: Reg, label: Label) {
        self.fixups.push(Fixup { word_index: self.words.len(), label });
        self.emit(Insn {
            mnemonic: m,
            ra,
            rb: Reg::R31,
            rc: Reg::R31,
            imm: 0,
            uses_literal: false,
            pal: PalFunc::Halt,
            raw: 0,
        });
    }

    /// Emits a register-form operate instruction.
    pub fn op(&mut self, m: Mnemonic, ra: Reg, rb: Reg, rc: Reg) {
        debug_assert_eq!(
            crate::Format::Operate,
            Insn { mnemonic: m, ra, rb, rc, imm: 0, uses_literal: false, pal: PalFunc::Halt, raw: 0 }
                .format()
        );
        self.emit(Insn {
            mnemonic: m,
            ra,
            rb,
            rc,
            imm: 0,
            uses_literal: false,
            pal: PalFunc::Halt,
            raw: 0,
        });
    }

    /// Emits a literal-form operate instruction (`0 <= lit < 256`).
    ///
    /// # Panics
    ///
    /// Panics if `lit` does not fit in 8 bits.
    pub fn op_i(&mut self, m: Mnemonic, ra: Reg, lit: u8, rc: Reg) {
        self.emit(Insn {
            mnemonic: m,
            ra,
            rb: Reg::R31,
            rc,
            imm: lit as i64,
            uses_literal: true,
            pal: PalFunc::Halt,
            raw: 0,
        });
    }

    /// Emits a memory-format instruction (`disp` must fit in 16 signed bits).
    ///
    /// # Panics
    ///
    /// Panics if `disp` is out of range.
    pub fn mem(&mut self, m: Mnemonic, ra: Reg, rb: Reg, disp: i64) {
        assert!((-32768..=32767).contains(&disp), "displacement out of range: {disp}");
        self.emit(Insn {
            mnemonic: m,
            ra,
            rb,
            rc: Reg::R31,
            imm: disp,
            uses_literal: false,
            pal: PalFunc::Halt,
            raw: 0,
        });
    }

    /// Materializes an arbitrary 64-bit constant into `r` (1–6 instructions).
    pub fn li(&mut self, r: Reg, v: u64) {
        let sv = v as i64;
        if (-32768..=32767).contains(&sv) {
            self.mem(Mnemonic::Lda, r, Reg::R31, sv);
            return;
        }
        if sv == sv as i32 as i64 {
            self.add_lo32(r, Reg::R31, v as u32);
            // The LDA/LDAH pair contributes `v mod 2^32` but may land in the
            // wrong 2^32 residue (positive values just below 2^31 pick up a
            // borrow). Zero-extend to fix; only positive values can mismatch.
            if lo32_addend(v as u32) != sv {
                self.op_i(Mnemonic::Sll, r, 32, r);
                self.op_i(Mnemonic::Srl, r, 32, r);
            }
            return;
        }
        // Materialize the high half (compensated for the signed residue the
        // low half will contribute), shift up, then add the low half.
        let lo = v as u32;
        let addend = lo32_addend(lo);
        let k = ((lo as i64 - addend) >> 32) as u32; // 0 or 1
        let hi = ((v >> 32) as u32).wrapping_add(k);
        self.add_lo32(r, Reg::R31, hi);
        self.op_i(Mnemonic::Sll, r, 32, r);
        if addend != 0 {
            self.add_lo32(r, r, lo);
        }
    }

    /// Emits an LDA/LDAH pair adding [`lo32_addend`]`(v)` to base `b`,
    /// leaving the result in `r`.
    fn add_lo32(&mut self, r: Reg, b: Reg, v: u32) {
        let (lo_signed, hi_signed) = lo32_parts(v);
        if hi_signed != 0 {
            self.mem(Mnemonic::Ldah, r, b, hi_signed);
            if lo_signed != 0 {
                self.mem(Mnemonic::Lda, r, r, lo_signed);
            }
        } else {
            self.mem(Mnemonic::Lda, r, b, lo_signed);
        }
    }

    /// Copies `src` to `dst` (`BIS src, src, dst`).
    pub fn mov(&mut self, src: Reg, dst: Reg) {
        self.op(Mnemonic::Bis, src, src, dst);
    }

    /// Emits `CALL_PAL halt`.
    pub fn halt(&mut self) {
        self.emit(Insn {
            mnemonic: Mnemonic::CallPal,
            ra: Reg::R31,
            rb: Reg::R31,
            rc: Reg::R31,
            imm: 0,
            uses_literal: false,
            pal: PalFunc::Halt,
            raw: 0,
        });
    }

    /// Emits `CALL_PAL callsys` (syscall number in `R0`, args in `R16..`).
    pub fn callsys(&mut self) {
        self.emit(Insn {
            mnemonic: Mnemonic::CallPal,
            ra: Reg::R31,
            rb: Reg::R31,
            rc: Reg::R31,
            imm: 0,
            uses_literal: false,
            pal: PalFunc::CallSys,
            raw: 0,
        });
    }

    /// Emits `JMP ra, (rb)`.
    pub fn jmp(&mut self, ra: Reg, rb: Reg) {
        self.emit_jump(Mnemonic::Jmp, ra, rb);
    }

    /// Emits `JSR ra, (rb)`.
    pub fn jsr(&mut self, ra: Reg, rb: Reg) {
        self.emit_jump(Mnemonic::Jsr, ra, rb);
    }

    /// Emits `RET zero, (rb)` — conventionally `rb` is `$ra` (`R26`).
    pub fn ret(&mut self, rb: Reg) {
        self.emit_jump(Mnemonic::Ret, Reg::R31, rb);
    }

    fn emit_jump(&mut self, m: Mnemonic, ra: Reg, rb: Reg) {
        self.emit(Insn {
            mnemonic: m,
            ra,
            rb,
            rc: Reg::R31,
            imm: 0,
            uses_literal: false,
            pal: PalFunc::Halt,
            raw: 0,
        });
    }

    /// Emits `BR zero, label` (unconditional, no link).
    pub fn br(&mut self, label: Label) {
        self.emit_branch(Mnemonic::Br, Reg::R31, label);
    }

    /// Emits `BSR ra, label` (call with link in `ra`).
    pub fn bsr(&mut self, ra: Reg, label: Label) {
        self.emit_branch(Mnemonic::Bsr, ra, label);
    }

    /// Resolves all labels and returns the instruction words.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never bound or a branch displacement
    /// does not fit in 21 bits.
    pub fn finish_words(mut self) -> Vec<u32> {
        for fixup in std::mem::take(&mut self.fixups) {
            let target = self.labels[fixup.label.0].expect("branch to unbound label");
            let pc = self.base + 4 * fixup.word_index as u64;
            let disp = (target as i64 - (pc as i64 + 4)) / 4;
            assert!(
                (-(1 << 20)..(1 << 20)).contains(&disp),
                "branch displacement out of range: {disp}"
            );
            self.words[fixup.word_index] =
                (self.words[fixup.word_index] & !0x1f_ffff) | ((disp as u32) & 0x1f_ffff);
        }
        self.words
    }

    /// Like [`Asm::finish_words`] but returns `(base, words)`.
    pub fn finish(self) -> (u64, Vec<u32>) {
        let base = self.base;
        (base, self.finish_words())
    }
}

/// Splits a 32-bit value into the signed LDA/LDAH displacements that
/// reconstruct it (with the standard carry when the low half is negative).
fn lo32_parts(v: u32) -> (i64, i64) {
    let lo = (v & 0xffff) as i64;
    let lo_signed = if lo >= 0x8000 { lo - 0x10000 } else { lo };
    let hi = (v >> 16).wrapping_add((lo >= 0x8000) as u32) & 0xffff;
    let hi_signed = if hi >= 0x8000 { hi as i64 - 0x10000 } else { hi as i64 };
    (lo_signed, hi_signed)
}

/// The exact 64-bit value the LDA/LDAH pair for `v` adds to its base:
/// congruent to `v` modulo 2^32, but possibly in a neighbouring residue.
fn lo32_addend(v: u32) -> i64 {
    let (lo_signed, hi_signed) = lo32_parts(v);
    (hi_signed << 16) + lo_signed
}

macro_rules! operate_methods {
    ($( $name:ident / $name_i:ident => $m:ident ),* $(,)?) => {
        impl Asm {
            $(
                #[doc = concat!("Emits `", stringify!($m), " ra, rb, rc`.")]
                pub fn $name(&mut self, ra: Reg, rb: Reg, rc: Reg) {
                    self.op(Mnemonic::$m, ra, rb, rc);
                }
                #[doc = concat!("Emits `", stringify!($m), " ra, #lit, rc`.")]
                pub fn $name_i(&mut self, ra: Reg, lit: u8, rc: Reg) {
                    self.op_i(Mnemonic::$m, ra, lit, rc);
                }
            )*
        }
    };
}

operate_methods! {
    addl/addl_i => Addl, subl/subl_i => Subl,
    addq/addq_i => Addq, subq/subq_i => Subq,
    s4addq/s4addq_i => S4addq, s8addq/s8addq_i => S8addq,
    addqv/addqv_i => Addqv, subqv/subqv_i => Subqv,
    cmpeq/cmpeq_i => Cmpeq, cmplt/cmplt_i => Cmplt, cmple/cmple_i => Cmple,
    cmpult/cmpult_i => Cmpult, cmpule/cmpule_i => Cmpule,
    and/and_i => And, bic/bic_i => Bic, bis/bis_i => Bis,
    ornot/ornot_i => Ornot, xor/xor_i => Xor, eqv/eqv_i => Eqv,
    cmoveq/cmoveq_i => Cmoveq, cmovne/cmovne_i => Cmovne,
    cmovlt/cmovlt_i => Cmovlt, cmovge/cmovge_i => Cmovge,
    cmovgt/cmovgt_i => Cmovgt, cmovle/cmovle_i => Cmovle,
    sll/sll_i => Sll, srl/srl_i => Srl, sra/sra_i => Sra,
    zap/zap_i => Zap, zapnot/zapnot_i => Zapnot,
    extbl/extbl_i => Extbl, extwl/extwl_i => Extwl,
    extll/extll_i => Extll, extql/extql_i => Extql,
    insbl/insbl_i => Insbl, inswl/inswl_i => Inswl,
    insll/insll_i => Insll, insql/insql_i => Insql,
    mskbl/mskbl_i => Mskbl, mskwl/mskwl_i => Mskwl,
    mskll/mskll_i => Mskll, mskql/mskql_i => Mskql,
    mull/mull_i => Mull, mulq/mulq_i => Mulq, umulh/umulh_i => Umulh,
}

macro_rules! memory_methods {
    ($( $name:ident => $m:ident ),* $(,)?) => {
        impl Asm {
            $(
                #[doc = concat!("Emits `", stringify!($m), " ra, disp(rb)`.")]
                pub fn $name(&mut self, ra: Reg, rb: Reg, disp: i64) {
                    self.mem(Mnemonic::$m, ra, rb, disp);
                }
            )*
        }
    };
}

memory_methods! {
    lda => Lda, ldah => Ldah,
    ldbu => Ldbu, ldwu => Ldwu, ldl => Ldl, ldq => Ldq,
    stb => Stb, stw => Stw, stl => Stl, stq => Stq,
}

macro_rules! branch_methods {
    ($( $name:ident => $m:ident ),* $(,)?) => {
        impl Asm {
            $(
                #[doc = concat!("Emits `", stringify!($m), " ra, label`.")]
                pub fn $name(&mut self, ra: Reg, label: Label) {
                    self.emit_branch(Mnemonic::$m, ra, label);
                }
            )*
        }
    };
}

branch_methods! {
    beq => Beq, bne => Bne, blt => Blt, ble => Ble,
    bgt => Bgt, bge => Bge, blbc => Blbc, blbs => Blbs,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{decode, Mnemonic};

    /// Emulates the `li` instruction sequences (LDA/LDAH/SLL/BIS) to verify
    /// constant materialization.
    fn eval_li(words: &[u32]) -> u64 {
        let mut regs = [0u64; 32];
        for &w in words {
            let i = decode(w);
            match i.mnemonic {
                Mnemonic::Lda | Mnemonic::Ldah => {
                    let vb = regs[i.rb.number() as usize];
                    regs[i.ra.number() as usize] = crate::alu::lda_value(i.mnemonic, vb, i.imm);
                }
                Mnemonic::Sll | Mnemonic::Srl => {
                    let va = regs[i.ra.number() as usize];
                    let r = crate::alu::operate(i.mnemonic, va, i.imm as u64, 0).unwrap();
                    regs[i.rc.number() as usize] = r;
                }
                other => panic!("unexpected instruction in li sequence: {other:?}"),
            }
            regs[31] = 0;
        }
        regs[1]
    }

    #[test]
    fn li_materializes_constants_exactly() {
        let cases = [
            0u64,
            1,
            0x7fff,
            0x8000,
            0xffff,
            0x1_0000,
            0x7fff_ffff,
            0x8000_0000,
            0xffff_ffff,
            0x1_0000_0000,
            0xdead_beef_cafe_f00d,
            u64::MAX,
            i64::MIN as u64,
            0x8000_0000_0000_0000,
            0x0000_8000_0000_8000,
            0xffff_7fff_ffff_7fff,
        ];
        for v in cases {
            let mut a = Asm::new(0);
            a.li(Reg::R1, v);
            let words = a.finish_words();
            assert_eq!(eval_li(&words), v, "li({v:#x}) produced wrong value");
            assert!(words.len() <= 6);
        }
    }

    #[test]
    fn li_pseudorandom_sweep() {
        let mut x = 0x12345678_9abcdef0u64;
        for _ in 0..2000 {
            // xorshift
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let mut a = Asm::new(0);
            a.li(Reg::R1, x);
            assert_eq!(eval_li(&a.finish_words()), x, "li({x:#x})");
        }
    }

    #[test]
    fn backward_and_forward_branches() {
        let mut a = Asm::new(0x1000);
        let fwd = a.label();
        a.br(fwd); // word 0 at 0x1000, targets 0x100c
        let back = a.here_label(); // 0x1004
        a.bne(Reg::R1, back); // word 1 at 0x1004, targets 0x1004 -> disp -1
        a.bind(fwd); // 0x100c? no: two words so far -> 0x1008
        a.halt();
        let words = a.finish_words();
        let br = decode(words[0]);
        assert_eq!(br.branch_target(0x1000), 0x1008);
        let bne = decode(words[1]);
        assert_eq!(bne.branch_target(0x1004), 0x1004);
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.br(l);
        let _ = a.finish_words();
    }

    #[test]
    #[should_panic(expected = "label bound twice")]
    fn double_bind_panics() {
        let mut a = Asm::new(0);
        let l = a.label();
        a.bind(l);
        a.bind(l);
    }

    #[test]
    fn mov_is_bis() {
        let mut a = Asm::new(0);
        a.mov(Reg::R5, Reg::R7);
        let i = decode(a.finish_words()[0]);
        assert_eq!(i.mnemonic, Mnemonic::Bis);
        assert_eq!((i.ra, i.rb, i.rc), (Reg::R5, Reg::R5, Reg::R7));
    }

    #[test]
    fn here_advances_by_four() {
        let mut a = Asm::new(0x2000);
        assert_eq!(a.here(), 0x2000);
        a.halt();
        assert_eq!(a.here(), 0x2004);
    }

    #[test]
    #[should_panic(expected = "displacement out of range")]
    fn displacement_range_checked() {
        let mut a = Asm::new(0);
        a.ldq(Reg::R1, Reg::R2, 40000);
    }
}
