//! Assembled program images.

use crate::Asm;

/// A contiguous range of initialized memory in a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Section {
    /// Starting virtual address.
    pub addr: u64,
    /// Raw contents.
    pub bytes: Vec<u8>,
}

impl Section {
    /// The first address past the end of the section.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }
}

/// A loadable program: an entry point plus initialized sections.
///
/// Programs are produced by the workload generators and loaded by both the
/// architectural simulator and the pipeline model, which place each section
/// into memory and start fetching at [`Program::entry`].
///
/// ```
/// use tfsim_isa::{Asm, Program, Reg};
///
/// let mut a = Asm::new(0x1_0000);
/// a.li(Reg::R0, 1); // exit
/// a.li(Reg::R16, 0);
/// a.callsys();
/// let prog = Program::new("tiny", a).with_data(0x2_0000, vec![1, 2, 3]);
/// assert_eq!(prog.entry, 0x1_0000);
/// assert_eq!(prog.sections.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Human-readable workload name (e.g. `"gzip-like"`).
    pub name: String,
    /// Address of the first instruction to execute.
    pub entry: u64,
    /// Initialized memory contents; code and data alike.
    pub sections: Vec<Section>,
}

impl Program {
    /// Builds a program whose code section comes from `asm`, entering at the
    /// assembler's base address.
    pub fn new(name: impl Into<String>, asm: Asm) -> Program {
        let (base, words) = asm.finish();
        let mut bytes = Vec::with_capacity(words.len() * 4);
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        Program {
            name: name.into(),
            entry: base,
            sections: vec![Section { addr: base, bytes }],
        }
    }

    /// Adds an initialized data section.
    pub fn with_data(mut self, addr: u64, bytes: Vec<u8>) -> Program {
        self.sections.push(Section { addr, bytes });
        self
    }

    /// Adds a data section of little-endian 64-bit words.
    pub fn with_data_words(self, addr: u64, words: &[u64]) -> Program {
        let mut bytes = Vec::with_capacity(words.len() * 8);
        for w in words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        self.with_data(addr, bytes)
    }

    /// Total bytes of initialized memory.
    pub fn image_size(&self) -> usize {
        self.sections.iter().map(|s| s.bytes.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Reg;

    #[test]
    fn code_section_is_little_endian_words() {
        let mut a = Asm::new(0x4000);
        a.addq(Reg::R1, Reg::R2, Reg::R3);
        let expected = {
            let mut a2 = Asm::new(0x4000);
            a2.addq(Reg::R1, Reg::R2, Reg::R3);
            a2.finish_words()[0]
        };
        let p = Program::new("t", a);
        assert_eq!(p.entry, 0x4000);
        assert_eq!(p.sections[0].bytes, expected.to_le_bytes().to_vec());
    }

    #[test]
    fn data_words_round_trip() {
        let a = Asm::new(0);
        let p = Program::new("t", a).with_data_words(0x8000, &[0x1122334455667788, 42]);
        let s = &p.sections[1];
        assert_eq!(s.addr, 0x8000);
        assert_eq!(s.bytes[..8], 0x1122334455667788u64.to_le_bytes());
        assert_eq!(s.end(), 0x8010);
        assert_eq!(p.image_size(), 16);
    }
}
