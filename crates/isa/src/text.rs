//! Textual assembly: parse an assembly listing into a [`Program`], and
//! disassemble instruction words back into text.
//!
//! The syntax mirrors conventional Alpha assembly with a few directives
//! and pseudo-instructions:
//!
//! ```text
//! ; comments run to end of line
//! .org 0x10000          ; set the code base (before any instruction)
//!
//! start:
//!     li    r1, 100             ; pseudo: materialize a 64-bit constant
//!     li    r2, 0
//! loop:
//!     addq  r2, r1, r2
//!     subq  r1, #1, r1          ; '#' marks an 8-bit literal operand
//!     bne   r1, loop
//!     ldq   r3, 8(r30)          ; memory operands: disp(base)
//!     mov   r2, r16             ; pseudo: register copy
//!     exit                      ; pseudo: li v0,1 + callsys
//!
//! .data 0x20000          ; start a data section
//! .quad 1, 2, 0xdeadbeef ; 64-bit little-endian words
//! .byte 1, 2, 3
//! .ascii "hello"
//! .zero 64               ; 64 zero bytes
//! ```
//!
//! ```
//! use tfsim_isa::text::parse_program;
//!
//! let p = parse_program("demo", ".org 0x1000\n li r16, 7\n exit\n").unwrap();
//! assert_eq!(p.entry, 0x1000);
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::{decode, Asm, Label, Mnemonic, Program, Reg};

/// An assembly parse error with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError { line, message: message.into() }
}

fn parse_u64(tok: &str, line: usize) -> Result<u64, ParseError> {
    let t = tok.trim();
    let (neg, t) = match t.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, t),
    };
    let v = if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        t.parse::<u64>()
    }
    .map_err(|_| err(line, format!("invalid number {tok:?}")))?;
    Ok(if neg { v.wrapping_neg() } else { v })
}

fn parse_reg(tok: &str, line: usize) -> Result<Reg, ParseError> {
    let t = tok.trim().to_lowercase();
    if let Some(n) = t.strip_prefix('r').and_then(|n| n.parse::<u8>().ok()) {
        if n < 32 {
            return Ok(Reg::from_number(n));
        }
    }
    // Software names.
    for r in Reg::all() {
        if r.software_name() == t {
            return Ok(r);
        }
    }
    Err(err(line, format!("invalid register {tok:?}")))
}

/// Splits `addq r1, r2, r3` into mnemonic and operand list.
fn split_operands(rest: &str) -> Vec<String> {
    rest.split(',').map(|s| s.trim().to_string()).filter(|s| !s.is_empty()).collect()
}

/// Parses `disp(base)` memory operands.
fn parse_mem_operand(tok: &str, line: usize) -> Result<(i64, Reg), ParseError> {
    let open = tok.find('(').ok_or_else(|| err(line, format!("expected disp(base), got {tok:?}")))?;
    let close = tok
        .rfind(')')
        .ok_or_else(|| err(line, format!("missing ')' in {tok:?}")))?;
    let disp_str = tok[..open].trim();
    let disp = if disp_str.is_empty() { 0 } else { parse_u64(disp_str, line)? as i64 };
    let base = parse_reg(&tok[open + 1..close], line)?;
    Ok((disp, base))
}

enum Operand {
    Register(Reg),
    Literal(u8),
}

fn parse_op_b(tok: &str, line: usize) -> Result<Operand, ParseError> {
    if let Some(lit) = tok.strip_prefix('#') {
        let v = parse_u64(lit, line)?;
        if v > 255 {
            return Err(err(line, format!("literal {v} exceeds 8 bits")));
        }
        Ok(Operand::Literal(v as u8))
    } else {
        Ok(Operand::Register(parse_reg(tok, line)?))
    }
}

const OPERATE_MNEMONICS: &[(&str, Mnemonic)] = &[
    ("addl", Mnemonic::Addl),
    ("s4addl", Mnemonic::S4addl),
    ("subl", Mnemonic::Subl),
    ("s4subl", Mnemonic::S4subl),
    ("addq", Mnemonic::Addq),
    ("s4addq", Mnemonic::S4addq),
    ("s8addq", Mnemonic::S8addq),
    ("subq", Mnemonic::Subq),
    ("s8subq", Mnemonic::S8subq),
    ("addlv", Mnemonic::Addlv),
    ("sublv", Mnemonic::Sublv),
    ("addqv", Mnemonic::Addqv),
    ("subqv", Mnemonic::Subqv),
    ("cmpeq", Mnemonic::Cmpeq),
    ("cmplt", Mnemonic::Cmplt),
    ("cmple", Mnemonic::Cmple),
    ("cmpult", Mnemonic::Cmpult),
    ("cmpule", Mnemonic::Cmpule),
    ("cmpbge", Mnemonic::Cmpbge),
    ("and", Mnemonic::And),
    ("bic", Mnemonic::Bic),
    ("bis", Mnemonic::Bis),
    ("or", Mnemonic::Bis),
    ("ornot", Mnemonic::Ornot),
    ("xor", Mnemonic::Xor),
    ("eqv", Mnemonic::Eqv),
    ("cmoveq", Mnemonic::Cmoveq),
    ("cmovne", Mnemonic::Cmovne),
    ("cmovlbs", Mnemonic::Cmovlbs),
    ("cmovlbc", Mnemonic::Cmovlbc),
    ("cmovlt", Mnemonic::Cmovlt),
    ("cmovge", Mnemonic::Cmovge),
    ("cmovle", Mnemonic::Cmovle),
    ("cmovgt", Mnemonic::Cmovgt),
    ("sll", Mnemonic::Sll),
    ("srl", Mnemonic::Srl),
    ("sra", Mnemonic::Sra),
    ("zap", Mnemonic::Zap),
    ("zapnot", Mnemonic::Zapnot),
    ("extbl", Mnemonic::Extbl),
    ("extwl", Mnemonic::Extwl),
    ("extll", Mnemonic::Extll),
    ("extql", Mnemonic::Extql),
    ("insbl", Mnemonic::Insbl),
    ("inswl", Mnemonic::Inswl),
    ("insll", Mnemonic::Insll),
    ("insql", Mnemonic::Insql),
    ("mskbl", Mnemonic::Mskbl),
    ("mskwl", Mnemonic::Mskwl),
    ("mskll", Mnemonic::Mskll),
    ("mskql", Mnemonic::Mskql),
    ("mull", Mnemonic::Mull),
    ("mulq", Mnemonic::Mulq),
    ("umulh", Mnemonic::Umulh),
    ("mullv", Mnemonic::Mullv),
    ("mulqv", Mnemonic::Mulqv),
];

const MEMORY_MNEMONICS: &[(&str, Mnemonic)] = &[
    ("lda", Mnemonic::Lda),
    ("ldah", Mnemonic::Ldah),
    ("ldbu", Mnemonic::Ldbu),
    ("ldwu", Mnemonic::Ldwu),
    ("ldl", Mnemonic::Ldl),
    ("ldq", Mnemonic::Ldq),
    ("stb", Mnemonic::Stb),
    ("stw", Mnemonic::Stw),
    ("stl", Mnemonic::Stl),
    ("stq", Mnemonic::Stq),
];

const BRANCH_MNEMONICS: &[(&str, Mnemonic)] = &[
    ("br", Mnemonic::Br),
    ("bsr", Mnemonic::Bsr),
    ("blbc", Mnemonic::Blbc),
    ("beq", Mnemonic::Beq),
    ("blt", Mnemonic::Blt),
    ("ble", Mnemonic::Ble),
    ("blbs", Mnemonic::Blbs),
    ("bne", Mnemonic::Bne),
    ("bge", Mnemonic::Bge),
    ("bgt", Mnemonic::Bgt),
];

fn lookup<T: Copy>(table: &[(&str, T)], key: &str) -> Option<T> {
    table.iter().find(|(k, _)| *k == key).map(|(_, v)| *v)
}

enum DataMode {
    None,
    Section { addr: u64, bytes: Vec<u8> },
}

/// Parses an assembly listing into a [`Program`] named `name`.
///
/// # Errors
///
/// Returns a [`ParseError`] naming the offending line for unknown
/// mnemonics, malformed operands, duplicate or undefined labels, and
/// misplaced directives.
pub fn parse_program(name: &str, source: &str) -> Result<Program, ParseError> {
    let mut base: Option<u64> = None;
    let mut asm: Option<Asm> = None;
    let mut labels: HashMap<String, Label> = HashMap::new();
    let mut data_sections: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut data = DataMode::None;

    // Pre-scan for labels so forward references resolve.
    let get_label = |asm: &mut Asm, labels: &mut HashMap<String, Label>, name: &str| {
        *labels.entry(name.to_string()).or_insert_with(|| asm.label())
    };

    for (idx, raw_line) in source.lines().enumerate() {
        let line_no = idx + 1;
        let line = raw_line.split(';').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }

        // Directives.
        if let Some(rest) = line.strip_prefix(".org") {
            if asm.is_some() {
                return Err(err(line_no, ".org must precede all instructions"));
            }
            base = Some(parse_u64(rest.trim(), line_no)?);
            continue;
        }
        if let Some(rest) = line.strip_prefix(".data") {
            if let DataMode::Section { addr, bytes } = std::mem::replace(&mut data, DataMode::None)
            {
                data_sections.push((addr, bytes));
            }
            data = DataMode::Section { addr: parse_u64(rest.trim(), line_no)?, bytes: Vec::new() };
            continue;
        }
        if let DataMode::Section { bytes, .. } = &mut data {
            if let Some(rest) = line.strip_prefix(".quad") {
                for tok in split_operands(rest) {
                    bytes.extend_from_slice(&parse_u64(&tok, line_no)?.to_le_bytes());
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix(".byte") {
                for tok in split_operands(rest) {
                    bytes.push(parse_u64(&tok, line_no)? as u8);
                }
                continue;
            }
            if let Some(rest) = line.strip_prefix(".ascii") {
                let t = rest.trim();
                let inner = t
                    .strip_prefix('"')
                    .and_then(|t| t.strip_suffix('"'))
                    .ok_or_else(|| err(line_no, "expected a double-quoted string"))?;
                bytes.extend_from_slice(inner.as_bytes());
                continue;
            }
            if let Some(rest) = line.strip_prefix(".zero") {
                let n = parse_u64(rest.trim(), line_no)?;
                bytes.extend(std::iter::repeat_n(0u8, n as usize));
                continue;
            }
            return Err(err(line_no, format!("unknown data directive {line:?}")));
        }

        let a = asm.get_or_insert_with(|| Asm::new(base.unwrap_or(0x1_0000)));

        // Labels (possibly followed by an instruction on the same line).
        let mut text = line;
        while let Some(colon) = text.find(':') {
            let (label_name, rest) = text.split_at(colon);
            let label_name = label_name.trim();
            if label_name.is_empty() || label_name.contains(char::is_whitespace) {
                break;
            }
            let l = get_label(a, &mut labels, label_name);
            // Binding twice is a user error surfaced with the line number.
            if std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| a.bind(l))).is_err() {
                return Err(err(line_no, format!("label {label_name:?} defined twice")));
            }
            text = rest[1..].trim();
        }
        if text.is_empty() {
            continue;
        }

        let (mn, rest) = match text.split_once(char::is_whitespace) {
            Some((m, r)) => (m.to_lowercase(), r.trim()),
            None => (text.to_lowercase(), ""),
        };
        let ops = split_operands(rest);

        // Pseudo-instructions first.
        match mn.as_str() {
            "li" => {
                if ops.len() != 2 {
                    return Err(err(line_no, "li takes: li rX, imm64"));
                }
                let r = parse_reg(&ops[0], line_no)?;
                let v = parse_u64(&ops[1], line_no)?;
                a.li(r, v);
                continue;
            }
            "mov" => {
                if ops.len() != 2 {
                    return Err(err(line_no, "mov takes: mov rSrc, rDst"));
                }
                a.mov(parse_reg(&ops[0], line_no)?, parse_reg(&ops[1], line_no)?);
                continue;
            }
            "nop" => {
                a.bis(Reg::R31, Reg::R31, Reg::R31);
                continue;
            }
            "halt" => {
                a.halt();
                continue;
            }
            "callsys" => {
                a.callsys();
                continue;
            }
            "exit" => {
                // exit [code]: set v0=1 (and optionally a0) then callsys.
                if let Some(code) = ops.first() {
                    let v = parse_u64(code, line_no)?;
                    a.li(Reg::A0, v);
                }
                a.li(Reg::V0, crate::syscall::EXIT);
                a.callsys();
                continue;
            }
            "ret" => {
                let rb = if ops.is_empty() { Reg::RA } else { parse_reg(&ops[0], line_no)? };
                a.ret(rb);
                continue;
            }
            "jmp" | "jsr" => {
                if ops.len() != 2 {
                    return Err(err(line_no, format!("{mn} takes: {mn} rLink, (rTarget)")));
                }
                let ra = parse_reg(&ops[0], line_no)?;
                let t = ops[1].trim();
                let inner = t
                    .strip_prefix('(')
                    .and_then(|t| t.strip_suffix(')'))
                    .unwrap_or(t);
                let rb = parse_reg(inner, line_no)?;
                if mn == "jmp" {
                    a.jmp(ra, rb);
                } else {
                    a.jsr(ra, rb);
                }
                continue;
            }
            _ => {}
        }

        if let Some(m) = lookup(OPERATE_MNEMONICS, &mn) {
            if ops.len() != 3 {
                return Err(err(line_no, format!("{mn} takes: {mn} rA, rB|#lit, rC")));
            }
            let ra = parse_reg(&ops[0], line_no)?;
            let rc = parse_reg(&ops[2], line_no)?;
            match parse_op_b(&ops[1], line_no)? {
                Operand::Register(rb) => a.op(m, ra, rb, rc),
                Operand::Literal(lit) => a.op_i(m, ra, lit, rc),
            }
            continue;
        }

        if let Some(m) = lookup(MEMORY_MNEMONICS, &mn) {
            if ops.len() != 2 {
                return Err(err(line_no, format!("{mn} takes: {mn} rA, disp(rB)")));
            }
            let ra = parse_reg(&ops[0], line_no)?;
            let (disp, rb) = parse_mem_operand(&ops[1], line_no)?;
            if !(-32768..=32767).contains(&disp) {
                return Err(err(line_no, format!("displacement {disp} out of range")));
            }
            a.mem(m, ra, rb, disp);
            continue;
        }

        if let Some(m) = lookup(BRANCH_MNEMONICS, &mn) {
            match m {
                Mnemonic::Br => {
                    if ops.len() != 1 {
                        return Err(err(line_no, "br takes: br label"));
                    }
                    let l = get_label(a, &mut labels, &ops[0]);
                    a.br(l);
                }
                Mnemonic::Bsr => {
                    if ops.len() != 2 {
                        return Err(err(line_no, "bsr takes: bsr rLink, label"));
                    }
                    let ra = parse_reg(&ops[0], line_no)?;
                    let l = get_label(a, &mut labels, &ops[1]);
                    a.bsr(ra, l);
                }
                _ => {
                    if ops.len() != 2 {
                        return Err(err(line_no, format!("{mn} takes: {mn} rA, label")));
                    }
                    let ra = parse_reg(&ops[0], line_no)?;
                    let l = get_label(a, &mut labels, &ops[1]);
                    match m {
                        Mnemonic::Beq => a.beq(ra, l),
                        Mnemonic::Bne => a.bne(ra, l),
                        Mnemonic::Blt => a.blt(ra, l),
                        Mnemonic::Ble => a.ble(ra, l),
                        Mnemonic::Bgt => a.bgt(ra, l),
                        Mnemonic::Bge => a.bge(ra, l),
                        Mnemonic::Blbc => a.blbc(ra, l),
                        Mnemonic::Blbs => a.blbs(ra, l),
                        _ => unreachable!("branch table"),
                    }
                }
            }
            continue;
        }

        return Err(err(line_no, format!("unknown mnemonic {mn:?}")));
    }

    if let DataMode::Section { addr, bytes } = data {
        data_sections.push((addr, bytes));
    }
    let asm = asm.ok_or_else(|| err(source.lines().count().max(1), "no instructions"))?;

    // Catch branches to labels that were referenced but never bound:
    // Asm::finish_words panics on unbound labels, so surface it as an error.
    let program = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| Program::new(name, asm)))
        .map_err(|_| err(source.lines().count().max(1), "branch to undefined label"))?;
    let mut program = program;
    for (addr, bytes) in data_sections {
        program = program.with_data(addr, bytes);
    }
    Ok(program)
}

/// Disassembles a sequence of instruction words starting at `base`.
///
/// ```
/// use tfsim_isa::text::disassemble;
/// let word = (0x10u32 << 26) | (1 << 21) | (2 << 16) | (0x20 << 5) | 3; // addq
/// let text = disassemble(&[word], 0x1000);
/// assert!(text.contains("addq r1, r2, r3"));
/// ```
pub fn disassemble(words: &[u32], base: u64) -> String {
    let mut out = String::new();
    for (i, &w) in words.iter().enumerate() {
        let pc = base + 4 * i as u64;
        let insn = decode(w);
        let text = if insn.is_conditional_branch()
            || matches!(insn.mnemonic, Mnemonic::Br | Mnemonic::Bsr)
        {
            // Resolve branch targets to absolute addresses for readability.
            let m = format!("{:?}", insn.mnemonic).to_lowercase();
            format!("{m} {}, {:#x}", insn.ra, insn.branch_target(pc))
        } else {
            insn.to_string()
        };
        out.push_str(&format!("{pc:#10x}:  {w:08x}  {text}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const DEMO: &str = r#"
; sum 1..=10, exit with the total
.org 0x10000
start:
    li   r1, 10
    li   r2, 0
loop:
    addq r2, r1, r2
    subq r1, #1, r1
    bne  r1, loop
    mov  r2, a0
    li   v0, 1
    callsys

.data 0x20000
.quad 1, 2, 0xdead
.byte 65, 66
.ascii "hi"
.zero 4
"#;

    #[test]
    fn parses_and_runs_demo() {
        let p = parse_program("demo", DEMO).expect("parse");
        assert_eq!(p.entry, 0x10000);
        assert_eq!(p.sections.len(), 2);
        let data = &p.sections[1];
        assert_eq!(data.addr, 0x2_0000);
        assert_eq!(data.bytes.len(), 24 + 2 + 2 + 4);
        assert_eq!(&data.bytes[24..28], b"ABhi");
    }

    #[test]
    fn forward_references_resolve() {
        let src = ".org 0x1000\n beq r1, end\n li r9, 1\nend: halt\n";
        let p = parse_program("fwd", src).expect("parse");
        assert!(p.sections[0].bytes.len() >= 12);
    }

    #[test]
    fn software_register_names() {
        let p = parse_program("regs", "li v0, 1\n li a0, 3\n callsys\n").expect("parse");
        let w = u32::from_le_bytes(p.sections[0].bytes[0..4].try_into().unwrap());
        let d = decode(w);
        assert_eq!(d.ra, Reg::R0);
    }

    #[test]
    fn error_reporting() {
        let e = parse_program("bad", "frobnicate r1, r2\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.message.contains("frobnicate"));

        let e = parse_program("bad", "li r1\n").unwrap_err();
        assert!(e.message.contains("li takes"));

        let e = parse_program("bad", "addq r1, r99, r3\n").unwrap_err();
        assert!(e.message.contains("register"));

        let e = parse_program("bad", "addq r1, #999, r3\n").unwrap_err();
        assert!(e.message.contains("8 bits"));

        let e = parse_program("bad", "x: halt\nx: halt\n").unwrap_err();
        assert!(e.message.contains("twice"), "{e}");

        let e = parse_program("bad", "br nowhere\n").unwrap_err();
        assert!(e.message.contains("undefined label"), "{e}");
    }

    #[test]
    fn exit_pseudo() {
        let p = parse_program("e", "exit 42\n").expect("parse");
        // li a0,42 ; li v0,1 ; callsys
        assert!(p.sections[0].bytes.len() >= 12);
    }

    #[test]
    fn memory_operands() {
        let p = parse_program("m", "ldq r1, -8(sp)\n stq r1, (r2)\n halt\n").expect("parse");
        let w0 = u32::from_le_bytes(p.sections[0].bytes[0..4].try_into().unwrap());
        let d = decode(w0);
        assert_eq!(d.mnemonic, Mnemonic::Ldq);
        assert_eq!(d.imm, -8);
        assert_eq!(d.rb, Reg::SP);
    }

    #[test]
    fn disassembly_round_trip_text() {
        let p = parse_program("demo", DEMO).expect("parse");
        let words: Vec<u32> = p.sections[0]
            .bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect();
        let text = disassemble(&words, p.entry);
        assert!(text.contains("addq"));
        assert!(text.contains("bne"));
        assert!(text.contains("call_pal 0x83"));
        // Branch targets resolved to absolute addresses.
        assert!(text.contains("0x1000"), "{text}");
    }
}
