#!/usr/bin/env bash
# Tier-1 gate for tfsim. Everything runs --offline: the workspace is
# hermetic (zero external crates), so CI must never touch a registry.
# A build that only works online is a regression.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> perf smoke (non-gating)"
# One minimal sample through the injection benches so the bench binary and
# bench.sh's data source can never bit-rot. Timings from a 1-sample run are
# meaningless; only the exit status matters, and even that does not gate.
TFSIM_BENCH_SAMPLES=1 TFSIM_BENCH_SAMPLE_MS=1 \
    cargo run --release --offline -q -p tfsim-bench --bin perf -- inject/ \
    || echo "==> perf smoke FAILED (non-gating)"

echo "==> tier-1 gate passed"
