#!/usr/bin/env bash
# Tier-1 gate for tfsim. Everything runs --offline: the workspace is
# hermetic (zero external crates), so CI must never touch a registry.
# A build that only works online is a regression.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> tier-1 gate passed"
