#!/usr/bin/env bash
# Tier-1 gate for tfsim. Everything runs --offline: the workspace is
# hermetic (zero external crates), so CI must never touch a registry.
# A build that only works online is a regression.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release --offline"
cargo build --release --offline

echo "==> cargo test -q --offline --workspace"
cargo test -q --offline --workspace

echo "==> cargo clippy --offline -- -D warnings"
cargo clippy --offline --all-targets -- -D warnings

echo "==> perf smoke (timings non-gating, exit status gating)"
# One minimal sample through the injection benches so the bench binary and
# bench.sh's data source can never bit-rot. Timings from a 1-sample run are
# meaningless and are NOT compared against anything, but a bench binary
# that crashes is a real regression, so its exit status gates.
TFSIM_BENCH_SAMPLES=1 TFSIM_BENCH_SAMPLE_MS=1 \
    cargo run --release --offline -q -p tfsim-bench --bin perf -- inject/

echo "==> sliced/pruned-engine census smoke (gating)"
# A short campaign through the word-parallel (bit-sliced) engine and the
# analytic masking pruner must each print the byte-identical census of
# the same campaign on the snapshot ladder: `--sliced` and `--pruned`
# are execution strategies, never experiment knobs. Timings here are
# non-gating (a 12-trial campaign proves correctness, not speed; the
# pruner's >=2x throughput claim lives in bench.sh / BENCH_campaign.json
# where medians over real sample counts are recorded).
run_tfsim="cargo run --release --offline -q -p tfsim-bench --bin tfsim-run --"
sliced_args="campaign --quick --seed 7 --start-points 1 --trials 12 --monitor 1200 \
    --scale 1 --workloads gzip-like,twolf-like"
$run_tfsim $sliced_args > target/ci_census_ladder.txt 2>/dev/null
$run_tfsim $sliced_args --sliced > target/ci_census_sliced.txt 2>/dev/null
$run_tfsim $sliced_args --pruned > target/ci_census_pruned.txt 2>/dev/null
diff target/ci_census_ladder.txt target/ci_census_sliced.txt
diff target/ci_census_ladder.txt target/ci_census_pruned.txt

echo "==> telemetry report smoke (gating)"
# A tiny traced campaign must produce a JSONL trace that the report
# subcommand can parse, cross-check against its footer, and render.
trace=target/ci_trace.jsonl
cargo run --release --offline -q -p tfsim-bench --bin tfsim-run -- \
    campaign --quick --seed 7 --start-points 1 --trials 10 --monitor 1500 \
    --scale 1 --workloads gzip-like,twolf-like --trace "$trace" >/dev/null 2>&1
cargo run --release --offline -q -p tfsim-bench --bin tfsim-run -- \
    report "$trace" > target/ci_report.txt
grep -q "outcome census" target/ci_report.txt

echo "==> deep-trace propagation smoke (gating)"
# A deep-traced campaign streams per-trial divergence timelines into the
# trace; the propagation report must render non-empty chains, the
# residency heatmap, the machine-readable aggregates, and the span
# profiler must account for (>=95% of) the start-point wall time.
deep_trace=target/ci_deep_trace.jsonl
cargo run --release --offline -q -p tfsim-bench --bin tfsim-run -- \
    campaign --quick --seed 7 --start-points 1 --trials 10 --monitor 1500 \
    --scale 1 --workloads gzip-like,twolf-like --trace "$deep_trace" --deep-trace \
    --profile target/ci_profile.collapsed > target/ci_deep_campaign.txt 2>/dev/null
grep -q "phase coverage: 9[5-9]\|phase coverage: 100" target/ci_deep_campaign.txt
test -s target/ci_profile.collapsed
cargo run --release --offline -q -p tfsim-bench --bin tfsim-run -- \
    report "$deep_trace" --propagation > target/ci_propagation.txt
grep -q "propagation chains" target/ci_propagation.txt
grep -q "residency heatmap" target/ci_propagation.txt
grep -q '"chains":\[{"chain":\[' target/ci_propagation.txt
# The deep-traced census block must be byte-identical to the untraced one.
cargo run --release --offline -q -p tfsim-bench --bin tfsim-run -- \
    campaign --quick --seed 7 --start-points 1 --trials 10 --monitor 1500 \
    --scale 1 --workloads gzip-like,twolf-like > target/ci_census_shallow.txt 2>/dev/null
census_block() { sed -n '/^outcome census/,/^eligible bits/p' "$1"; }
diff <(census_block target/ci_census_shallow.txt) <(census_block target/ci_deep_campaign.txt)

echo "==> journal resume smoke (gating)"
# A journaled quick campaign, interrupted by truncating the journal
# mid-file, must resume to the byte-identical census of an uninterrupted
# run (torn-tail recovery + completed-task replay + deterministic re-run).
run_tfsim="cargo run --release --offline -q -p tfsim-bench --bin tfsim-run --"
campaign_args="campaign --quick --seed 7 --start-points 2 --trials 8 --monitor 1000 \
    --scale 1 --workloads gzip-like,twolf-like"
journal=target/ci_journal.jsonl
$run_tfsim $campaign_args > target/ci_census_ref.txt 2>/dev/null
$run_tfsim $campaign_args --journal "$journal" > target/ci_census_full.txt 2>/dev/null
diff target/ci_census_ref.txt target/ci_census_full.txt
# Tear the journal mid-file (60% of the bytes, ending inside a line).
size=$(wc -c < "$journal")
head -c $((size * 3 / 5)) "$journal" > "$journal.torn" && mv "$journal.torn" "$journal"
$run_tfsim $campaign_args --journal "$journal" --resume \
    > target/ci_census_resumed.txt 2>/dev/null
diff target/ci_census_ref.txt target/ci_census_resumed.txt

echo "==> tier-1 gate passed"
