#!/usr/bin/env bash
# Campaign-throughput benchmark runner.
#
# Builds the perf binary in release mode, runs the injection benchmarks
# (or any other filter passed as $1), prints the human-readable table to
# stderr, and records the machine-readable results — one JSON object per
# line — to BENCH_campaign.json.
#
#   ./bench.sh                 # inject/ benches -> BENCH_campaign.json
#   ./bench.sh pipeline/       # any other filter, same output file
#
# TFSIM_BENCH_SAMPLES / TFSIM_BENCH_SAMPLE_MS tune the measurement (see
# crates/check/src/bench.rs). The headline number is the ratio of the
# `inject/snapshot-ladder-vs-naive/{naive,ladder}` medians: both run the
# same 25-trial plan, so naive_median_ns / ladder_median_ns is the
# fast-path speedup in trials/sec.
#
# The default filter also records the telemetry-overhead pair:
# `inject/trials-per-sec` (untraced, the zero-overhead contract's pinned
# number) vs `inject/trials-per-sec-traced` (per-trial spans on), both
# over the identical 100-trial plan — and `inject/trials-per-sec-sliced`,
# the same plan through the word-parallel (bit-sliced) engine. The
# untraced/sliced median ratio is the word-parallel speedup; the sliced
# engine's records are byte-identical to the ladder's (pinned by the
# equivalence suite), so the ratio is pure execution-strategy gain.
#
# The analytic-pruner pair rides the same plan:
# `inject/trials-per-sec-pruned` runs it through the masking pruner
# (dead-window proofs + site equivalence classes on the extended-tier
# footprint, remainder delegated to the sliced engine) — the
# sliced/pruned median ratio is the pruner's gain and is expected to be
# >= 2x on this campaign shape — and `inject/pruner-overhead` runs a
# 100-site batch the pruner discharges entirely without simulating, so
# its median is the pure per-batch analysis cost. Pruned records are
# byte-identical to the sliced engine's (same equivalence suite).
set -euo pipefail
cd "$(dirname "$0")"

filter="${1:-inject/}"
out=BENCH_campaign.json

cargo run --release --offline -q -p tfsim-bench --bin perf -- "$filter" --json \
  | tee /dev/stderr | grep '^{' > "$out"
echo "wrote $out" >&2
