#!/usr/bin/env bash
# Campaign-throughput benchmark runner.
#
# Builds the perf binary in release mode, runs the injection benchmarks
# (or any other filter passed as $1), prints the human-readable table to
# stderr, and records the machine-readable results — one JSON object per
# line — to BENCH_campaign.json.
#
#   ./bench.sh                 # inject/ benches -> BENCH_campaign.json
#   ./bench.sh pipeline/       # any other filter, same output file
#
# TFSIM_BENCH_SAMPLES / TFSIM_BENCH_SAMPLE_MS tune the measurement (see
# crates/check/src/bench.rs). The headline number is the ratio of the
# `inject/snapshot-ladder-vs-naive/{naive,ladder}` medians: both run the
# same 25-trial plan, so naive_median_ns / ladder_median_ns is the
# fast-path speedup in trials/sec.
#
# The default filter also records the telemetry-overhead pair:
# `inject/trials-per-sec` (untraced, the zero-overhead contract's pinned
# number) vs `inject/trials-per-sec-traced` (per-trial spans on), both
# over the identical 100-trial plan — and `inject/trials-per-sec-sliced`,
# the same plan through the word-parallel (bit-sliced) engine. The
# untraced/sliced median ratio is the word-parallel speedup; the sliced
# engine's records are byte-identical to the ladder's (pinned by the
# equivalence suite), so the ratio is pure execution-strategy gain.
#
# The deep-trace pair extends the telemetry-overhead story:
# `inject/trials-per-sec-deep-traced` runs the identical plan with full
# divergence timelines on (per-unit diverged-set samples on divergent
# check cycles — dense just after injection, every eighth check once
# sparse — from a dedicated incremental fingerprint engine). After
# recording, the default filter gates two ratios from the fresh medians:
# deep-traced must stay within 25% of traced (timelines sample only
# already-divergent cycles, at bounded cadence), and traced must stay
# within 15% of untraced (the longstanding within-noise telemetry
# contract, now enforced where the numbers are produced).
#
# The analytic-pruner pair rides the same plan:
# `inject/trials-per-sec-pruned` runs it through the masking pruner
# (dead-window proofs + site equivalence classes on the extended-tier
# footprint, remainder delegated to the sliced engine) — the
# sliced/pruned median ratio is the pruner's gain and is expected to be
# >= 2x on this campaign shape — and `inject/pruner-overhead` runs a
# 100-site batch the pruner discharges entirely without simulating, so
# its median is the pure per-batch analysis cost. Pruned records are
# byte-identical to the sliced engine's (same equivalence suite).
set -euo pipefail
cd "$(dirname "$0")"

filter="${1:-inject/}"
out=BENCH_campaign.json

cargo run --release --offline -q -p tfsim-bench --bin perf -- "$filter" --json \
  | tee /dev/stderr | grep '^{' > "$out"
echo "wrote $out" >&2

# Overhead gates (only when the run recorded the trio).
median() {
  sed -n "s/^{\"name\":\"$(printf '%s' "$1" | sed 's/\//\\\//g')\",\"median_ns\":\([0-9.]*\).*/\1/p" "$out"
}
untraced=$(median "inject/trials-per-sec")
traced=$(median "inject/trials-per-sec-traced")
deep=$(median "inject/trials-per-sec-deep-traced")
if [ -n "$untraced" ] && [ -n "$traced" ] && [ -n "$deep" ]; then
  awk -v u="$untraced" -v t="$traced" -v d="$deep" 'BEGIN {
    printf "traced/untraced: %.3fx   deep/traced: %.3fx\n", t/u, d/t
    bad = 0
    if (t > 1.15 * u) { print "GATE FAIL: traced exceeds untraced by >15%"; bad = 1 }
    if (d > 1.25 * t) { print "GATE FAIL: deep-traced exceeds traced by >25%"; bad = 1 }
    exit bad
  }' >&2
fi
